//===- ir/Function.h - Basic blocks, functions ------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks and functions. Blocks live in a function-owned vector and
/// are referenced by index (BlockId); block 0 is the entry. Virtual
/// registers are function-scoped and typed; parameters occupy registers
/// 0..NumParams-1.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_IR_FUNCTION_H
#define DYC_IR_FUNCTION_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace dyc {
namespace ir {

/// A basic block: zero or more non-terminator instructions followed by
/// exactly one terminator (the verifier enforces this).
struct BasicBlock {
  std::string Name;
  std::vector<Instruction> Instrs;

  const Instruction &terminator() const {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block has no terminator");
    return Instrs.back();
  }

  /// Appends the successor block ids to \p Succs.
  void appendSuccessors(std::vector<BlockId> &Succs) const {
    const Instruction &T = terminator();
    if (T.Op == Opcode::Br) {
      Succs.push_back(T.TrueSucc);
    } else if (T.Op == Opcode::CondBr) {
      Succs.push_back(T.TrueSucc);
      Succs.push_back(T.FalseSucc);
    }
  }
};

/// A function: typed virtual registers, a CFG of basic blocks, and
/// metadata used by the DyC pipeline.
class Function {
public:
  std::string Name;
  uint32_t NumParams = 0;
  Type RetTy = Type::Void;
  /// Pure-function annotation (paper section 2.2.6): calls to pure
  /// functions with all-static arguments may be executed at dynamic-compile
  /// time. This is a potentially unsafe programmer assertion, as in DyC.
  bool Pure = false;

  /// Creates a fresh register of type \p Ty with debug name \p Name.
  Reg newReg(Type Ty, const std::string &Name = "");

  /// Creates a new block; returns its id.
  BlockId newBlock(const std::string &Name = "");

  BasicBlock &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  const BasicBlock &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  size_t numBlocks() const { return Blocks.size(); }
  uint32_t numRegs() const { return static_cast<uint32_t>(RegTypes.size()); }

  Type regType(Reg R) const {
    assert(R < RegTypes.size() && "register out of range");
    return RegTypes[R];
  }

  const std::string &regName(Reg R) const {
    assert(R < RegNames.size() && "register out of range");
    return RegNames[R];
  }

  /// True if any block contains a MakeStatic annotation — i.e., DyC will
  /// build dynamic regions for this function.
  bool hasAnnotations() const;

  /// Total instruction count across blocks (annotations included).
  size_t numInstructions() const;

  std::vector<BasicBlock> Blocks;

private:
  std::vector<Type> RegTypes;
  std::vector<std::string> RegNames;
};

} // namespace ir
} // namespace dyc

#endif // DYC_IR_FUNCTION_H
