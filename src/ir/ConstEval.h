//===- ir/ConstEval.h - Compile-time/specialize-time evaluation ----------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates pure IR operations on constant Words. Shared by the static
/// constant folder and by the run-time specializer (the latter is exactly
/// "dynamic constant propagation and folding" — the paper's framing of
/// value-specific dynamic compilation).
///
//===----------------------------------------------------------------------===//

#ifndef DYC_IR_CONSTEVAL_H
#define DYC_IR_CONSTEVAL_H

#include "ir/Instruction.h"

namespace dyc {
namespace ir {

/// Evaluates \p Op on \p A (and \p B for binary forms). Returns false when
/// the operation cannot be evaluated (division by zero, or a non-evaluable
/// opcode).
bool evalPureOp(Opcode Op, Word A, Word B, Word &Out);

/// True for opcodes evalPureOp can handle given constant operands
/// (arithmetic, compares, conversions, moves — not loads/calls/control).
bool isEvaluableOp(Opcode Op);

} // namespace ir
} // namespace dyc

#endif // DYC_IR_CONSTEVAL_H
