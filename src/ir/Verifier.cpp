//===- ir/Verifier.cpp - IR structural checks ---------------------------------===//

#include "ir/Module.h"

namespace dyc {
namespace ir {

namespace {

/// Expected operand/result typing per opcode.
bool isIntBinary(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::Shr:
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
    return true;
  default:
    return false;
  }
}

bool isFloatBinary(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
    return true;
  default:
    return false;
  }
}

bool isCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
    return true;
  default:
    return false;
  }
}

struct Checker {
  const Function &F;
  const Module &M;
  std::string Err;

  bool fail(size_t B, size_t I, const std::string &Msg) {
    Err = formatString("%s: bb%zu[%zu]: %s", F.Name.c_str(), B, I,
                       Msg.c_str());
    return false;
  }

  bool regOk(Reg R) const { return R < F.numRegs(); }

  bool checkInstr(size_t B, size_t Idx, const Instruction &I) {
    std::vector<Reg> Uses;
    I.appendUses(Uses);
    for (Reg U : Uses)
      if (!regOk(U))
        return fail(B, Idx, "use of out-of-range register");
    if (I.Dst != NoReg && !regOk(I.Dst))
      return fail(B, Idx, "out-of-range destination register");
    if (I.Dst != NoReg && I.Ty == Type::Void)
      return fail(B, Idx, "destination with void result type");
    if (I.Dst != NoReg && F.regType(I.Dst) != I.Ty)
      return fail(B, Idx, "destination register type mismatch");

    switch (I.Op) {
    case Opcode::ConstI:
      if (I.Ty != Type::I64)
        return fail(B, Idx, "consti must produce i64");
      break;
    case Opcode::ConstF:
      if (I.Ty != Type::F64)
        return fail(B, Idx, "constf must produce f64");
      break;
    case Opcode::Mov:
      if (F.regType(I.Src1) != I.Ty)
        return fail(B, Idx, "mov type mismatch");
      break;
    case Opcode::Neg:
      if (I.Ty != Type::I64 || F.regType(I.Src1) != Type::I64)
        return fail(B, Idx, "neg must be i64");
      break;
    case Opcode::FNeg:
      if (I.Ty != Type::F64 || F.regType(I.Src1) != Type::F64)
        return fail(B, Idx, "fneg must be f64");
      break;
    case Opcode::IToF:
      if (I.Ty != Type::F64 || F.regType(I.Src1) != Type::I64)
        return fail(B, Idx, "itof types");
      break;
    case Opcode::FToI:
      if (I.Ty != Type::I64 || F.regType(I.Src1) != Type::F64)
        return fail(B, Idx, "ftoi types");
      break;
    case Opcode::Load:
      if (F.regType(I.Src1) != Type::I64)
        return fail(B, Idx, "load address must be i64");
      break;
    case Opcode::Store:
      if (F.regType(I.Src1) != Type::I64)
        return fail(B, Idx, "store address must be i64");
      if (!regOk(I.Src2))
        return fail(B, Idx, "store value register out of range");
      break;
    case Opcode::Call: {
      if (I.Callee < 0 ||
          static_cast<size_t>(I.Callee) >= M.numFunctions())
        return fail(B, Idx, "call to out-of-range function");
      const Function &Callee = M.function(I.Callee);
      if (I.Args.size() != Callee.NumParams)
        return fail(B, Idx, "call arity mismatch");
      if (I.Dst != NoReg && Callee.RetTy != I.Ty)
        return fail(B, Idx, "call result type mismatch");
      break;
    }
    case Opcode::CallExt: {
      if (I.Callee < 0 ||
          static_cast<size_t>(I.Callee) >= M.numExternals())
        return fail(B, Idx, "call to out-of-range external");
      const ExternalDecl &D = M.external(I.Callee);
      if (I.Args.size() != D.NumArgs)
        return fail(B, Idx, "external call arity mismatch");
      if (I.StaticCall && !D.Pure)
        return fail(B, Idx, "static call to impure external");
      break;
    }
    case Opcode::Br:
      if (I.TrueSucc >= F.numBlocks())
        return fail(B, Idx, "branch to out-of-range block");
      break;
    case Opcode::CondBr:
      if (I.TrueSucc >= F.numBlocks() || I.FalseSucc >= F.numBlocks())
        return fail(B, Idx, "condbr to out-of-range block");
      if (F.regType(I.Src1) != Type::I64)
        return fail(B, Idx, "condbr condition must be i64");
      break;
    case Opcode::Ret:
      if (F.RetTy == Type::Void) {
        if (I.Src1 != NoReg)
          return fail(B, Idx, "void function returns a value");
      } else {
        if (I.Src1 == NoReg || F.regType(I.Src1) != F.RetTy)
          return fail(B, Idx, "return value type mismatch");
      }
      break;
    case Opcode::MakeStatic:
    case Opcode::MakeDynamic:
      for (Reg R : I.AnnotVars)
        if (!regOk(R))
          return fail(B, Idx, "annotation names out-of-range register");
      break;
    default:
      if (isIntBinary(I.Op)) {
        if (F.regType(I.Src1) != Type::I64 ||
            F.regType(I.Src2) != Type::I64)
          return fail(B, Idx, "integer operands expected");
      } else if (isFloatBinary(I.Op)) {
        if (F.regType(I.Src1) != Type::F64 ||
            F.regType(I.Src2) != Type::F64)
          return fail(B, Idx, "floating operands expected");
      }
      if (isCompare(I.Op) && I.Ty != Type::I64)
        return fail(B, Idx, "compare must produce i64");
      break;
    }
    return true;
  }

  bool run() {
    if (F.Blocks.empty()) {
      Err = F.Name + ": function has no blocks";
      return false;
    }
    if (F.NumParams > F.numRegs()) {
      Err = F.Name + ": more parameters than registers";
      return false;
    }
    for (size_t B = 0; B != F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      if (BB.Instrs.empty())
        return fail(B, 0, "empty block");
      for (size_t I = 0; I != BB.Instrs.size(); ++I) {
        const Instruction &In = BB.Instrs[I];
        bool IsLast = I + 1 == BB.Instrs.size();
        if (In.isTerminator() != IsLast)
          return fail(B, I, IsLast ? "block does not end in a terminator"
                                   : "terminator in the middle of a block");
        if (!checkInstr(B, I, In))
          return false;
      }
    }
    return true;
  }
};

} // namespace

std::string verifyFunction(const Function &F, const Module &M) {
  Checker C{F, M, {}};
  C.run();
  return C.Err;
}

std::string verifyModule(const Module &M) {
  for (size_t I = 0; I != M.numFunctions(); ++I) {
    std::string Err = verifyFunction(M.function(static_cast<int>(I)), M);
    if (!Err.empty())
      return Err;
  }
  return std::string();
}

} // namespace ir
} // namespace dyc
