//===- ir/IRBuilder.cpp --------------------------------------------------------===//

#include "ir/IRBuilder.h"

namespace dyc {
namespace ir {

Type resultTypeOf(Opcode Op) {
  switch (Op) {
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FNeg: case Opcode::IToF: case Opcode::ConstF:
    return Type::F64;
  default:
    return Type::I64;
  }
}

Instruction &IRBuilder::append(Instruction I) {
  BasicBlock &B = F.block(Cur);
  assert((B.Instrs.empty() || !B.Instrs.back().isTerminator()) &&
         "appending after a terminator");
  B.Instrs.push_back(std::move(I));
  return B.Instrs.back();
}

Reg IRBuilder::constI(int64_t V, const std::string &Name) {
  Instruction I;
  I.Op = Opcode::ConstI;
  I.Ty = Type::I64;
  I.Dst = F.newReg(Type::I64, Name);
  I.Imm = V;
  return append(std::move(I)).Dst;
}

Reg IRBuilder::constF(double V, const std::string &Name) {
  Instruction I;
  I.Op = Opcode::ConstF;
  I.Ty = Type::F64;
  I.Dst = F.newReg(Type::F64, Name);
  I.Imm = static_cast<int64_t>(Word::fromFloat(V).Bits);
  return append(std::move(I)).Dst;
}

Reg IRBuilder::binary(Opcode Op, Reg A, Reg B, const std::string &Name) {
  Type Ty = resultTypeOf(Op);
  Reg Dst = F.newReg(Ty, Name);
  append(makeBinary(Op, Ty, Dst, A, B));
  return Dst;
}

Reg IRBuilder::unary(Opcode Op, Reg A, const std::string &Name) {
  Type Ty = resultTypeOf(Op);
  Reg Dst = F.newReg(Ty, Name);
  append(makeUnary(Op, Ty, Dst, A));
  return Dst;
}

Reg IRBuilder::mov(Reg Src, const std::string &Name) {
  Type Ty = F.regType(Src);
  Reg Dst = F.newReg(Ty, Name);
  append(makeUnary(Opcode::Mov, Ty, Dst, Src));
  return Dst;
}

void IRBuilder::movTo(Reg Dst, Reg Src) {
  assert(F.regType(Dst) == F.regType(Src) && "movTo type mismatch");
  append(makeUnary(Opcode::Mov, F.regType(Dst), Dst, Src));
}

Reg IRBuilder::load(Reg Addr, int64_t Off, Type Ty, bool Static,
                    const std::string &Name) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Ty = Ty;
  I.Dst = F.newReg(Ty, Name);
  I.Src1 = Addr;
  I.Imm = Off;
  I.StaticLoad = Static;
  return append(std::move(I)).Dst;
}

void IRBuilder::store(Reg Addr, int64_t Off, Reg Val) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Src1 = Addr;
  I.Src2 = Val;
  I.Imm = Off;
  append(std::move(I));
}

Reg IRBuilder::call(const Module &M, int Callee,
                    const std::vector<Reg> &Args, bool Static,
                    const std::string &Name) {
  const Function &CF = M.function(Callee);
  Instruction I;
  I.Op = Opcode::Call;
  I.Callee = Callee;
  I.Args = Args;
  I.StaticCall = Static;
  if (CF.RetTy != Type::Void) {
    I.Ty = CF.RetTy;
    I.Dst = F.newReg(CF.RetTy, Name);
  }
  return append(std::move(I)).Dst;
}

Reg IRBuilder::callExt(const Module &M, int Callee,
                       const std::vector<Reg> &Args, bool Static,
                       const std::string &Name) {
  const ExternalDecl &D = M.external(Callee);
  Instruction I;
  I.Op = Opcode::CallExt;
  I.Callee = Callee;
  I.Args = Args;
  I.StaticCall = Static;
  if (D.RetTy != Type::Void) {
    I.Ty = D.RetTy;
    I.Dst = F.newReg(D.RetTy, Name);
  }
  return append(std::move(I)).Dst;
}

void IRBuilder::br(BlockId Target) {
  Instruction I;
  I.Op = Opcode::Br;
  I.TrueSucc = Target;
  append(std::move(I));
}

void IRBuilder::condBr(Reg Cond, BlockId T, BlockId FBlk) {
  Instruction I;
  I.Op = Opcode::CondBr;
  I.Src1 = Cond;
  I.TrueSucc = T;
  I.FalseSucc = FBlk;
  append(std::move(I));
}

void IRBuilder::ret(Reg V) {
  Instruction I;
  I.Op = Opcode::Ret;
  I.Src1 = V;
  append(std::move(I));
}

void IRBuilder::makeStatic(const std::vector<Reg> &Vars, CachePolicy Policy) {
  Instruction I;
  I.Op = Opcode::MakeStatic;
  I.AnnotVars = Vars;
  I.Policy = Policy;
  append(std::move(I));
}

void IRBuilder::makeDynamic(const std::vector<Reg> &Vars) {
  Instruction I;
  I.Op = Opcode::MakeDynamic;
  I.AnnotVars = Vars;
  append(std::move(I));
}

} // namespace ir
} // namespace dyc
