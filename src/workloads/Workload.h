//===- workloads/Workload.h - The benchmark suite --------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's workload (Table 1), re-implemented in MiniC: five
/// applications (dinero, m88ksim, mipsi, pnmconvol, viewperf) and five
/// kernels (binary, chebyshev, dotproduct, query, romberg), each with the
/// paper's static-variable values as inputs.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_WORKLOADS_WORKLOAD_H
#define DYC_WORKLOADS_WORKLOAD_H

#include "vm/VM.h"

#include <functional>
#include <string>
#include <vector>

namespace dyc {
namespace workloads {

/// Everything the harness needs to invoke and validate one workload after
/// its memory image has been set up.
struct WorkloadSetup {
  std::vector<Word> RegionArgs; ///< arguments for the region function
  std::vector<Word> MainArgs;   ///< arguments for the whole-program driver
  double UnitsPerInvocation = 1.0; ///< domain units per region invocation
  std::string UnitName = "invocations";
  int64_t OutBase = 0; ///< validated output range in VM memory
  int64_t OutLen = 0;
};

/// One benchmark program.
struct Workload {
  std::string Name;
  std::string Description;
  std::string StaticVars; ///< Table 1: "Annotated Static Variables"
  std::string StaticVals; ///< Table 1: "Values of Static Variables"
  bool IsKernel = false;
  std::string Source;     ///< MiniC source (with annotations)
  std::string RegionFunc; ///< dynamically compiled function (timed)
  /// Additional dynamically compiled functions whose time counts toward
  /// the whole-program "% in dynamic regions" (viewperf has two).
  std::vector<std::string> ExtraRegionFuncs;
  std::string MainFunc;   ///< whole-program driver
  uint64_t RegionInvocations = 200; ///< timing repetitions
  /// Allocates and fills the VM memory image; must be deterministic so
  /// the static and dynamic configurations see identical inputs.
  std::function<WorkloadSetup(vm::VM &)> Setup;
};

/// All ten workloads, applications first (Table 1 order).
const std::vector<Workload> &allWorkloads();

/// Lookup by name; aborts if absent.
const Workload &workloadByName(const std::string &Name);

// Individual factories (one per source file).
Workload makeDinero();
Workload makeM88ksim();
Workload makeMipsi();
Workload makePnmconvol();
Workload makeViewperfProject();
Workload makeViewperfShade();
Workload makeBinary();
Workload makeChebyshev();
Workload makeDotproduct();
Workload makeQuery();
Workload makeRomberg();

} // namespace workloads
} // namespace dyc

#endif // DYC_WORKLOADS_WORKLOAD_H
