//===- workloads/Viewperf.cpp - SPEC Viewperf / Mesa routines -----------------------===//
//
// The two Mesa routines the paper dynamically compiles:
//
//  * project_and_clip_test — transforms vertices by the (static) 3D
//    projection matrix and clip-tests them. A perspective matrix is
//    mostly zeroes, so zero/copy propagation erases most of the
//    multiply/accumulate work (Table 3: 1.3x).
//
//  * gl_color_shade_vertices — the general-purpose shader, specialized
//    for the lighting state. The lighting parameters are derived static
//    only on the lit path, so intraprocedural polyvariant division is
//    required (section 4.4.4); the original Mesa sources carried
//    hand-specialized variants of this routine, which the paper deleted
//    in favor of dynamic compilation.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

const char *ProjectSource = R"(
/* Transform nverts vertices (x,y,z triples) by the 4x4 matrix m (static
   contents), producing clip coordinates and counting in-frustum verts. */
int project_and_clip(double* m, double* verts, double* out, int nverts) {
  int r;
  int c;
  make_static(m, r, c : cache_one_unchecked);
  int i;
  int inside = 0;
  for (i = 0; i < nverts; i = i + 1) {
    for (r = 0; r < 4; r = r + 1) {              /* unrolled (static) */
      double acc = m@[r * 4 + 3];                /* translation column */
      for (c = 0; c < 3; c = c + 1) {            /* unrolled (static) */
        acc = acc + m@[r * 4 + c] * verts[i * 3 + c];
      }
      out[i * 4 + r] = acc;
    }
    double w = out[i * 4 + 3];
    double nw = 0.0 - w;
    int ok = 1;
    if (out[i * 4] > w) { ok = 0; }
    if (out[i * 4] < nw) { ok = 0; }
    if (out[i * 4 + 1] > w) { ok = 0; }
    if (out[i * 4 + 1] < nw) { ok = 0; }
    if (out[i * 4 + 2] > w) { ok = 0; }
    if (out[i * 4 + 2] < nw) { ok = 0; }
    inside = inside + ok;
  }
  return inside;
}

/* Shade nverts vertices. light layout: [0..2]=ambient RGB,
   [3..5]=diffuse RGB, [6..8]=light direction. mode 1 = lighting enabled.
   The make_static(light) on the lit path creates the second division. */
int shade(int mode, double* light, double* normals, double* colors,
          int nverts) {
  int ch;
  make_static(mode, ch);
  if (mode == 1) {
    make_static(light);
  }
  int i;
  for (i = 0; i < nverts; i = i + 1) {
    if (mode == 1) {
      double ndotl = normals[i * 3] * light@[6]
                   + normals[i * 3 + 1] * light@[7]
                   + normals[i * 3 + 2] * light@[8];
      if (ndotl < 0.0) { ndotl = 0.0; }
      for (ch = 0; ch < 3; ch = ch + 1) {        /* unrolled (static) */
        colors[i * 3 + ch] = light@[ch] + light@[3 + ch] * ndotl;
      }
    } else {
      for (ch = 0; ch < 3; ch = ch + 1) {
        colors[i * 3 + ch] = 1.0;
      }
    }
  }
  return nverts;
}

/* Whole-program driver: generate a vertex array, project it, then shade
   it (the Viewperf frame loop). */
int viewperf_main(double* m, double* verts, double* out, int nverts,
                  double* light, double* normals, double* colors) {
  /* vertex generation stands in for Viewperf's file loading */
  int i;
  int seed = 777;
  for (i = 0; i < nverts * 3; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int v = seed % 1000;
    if (v < 0) { v = 0 - v; }
    verts[i] = (double)v / 500.0 - 1.0;
    normals[i] = (double)v / 1000.0;
  }
  int inside = project_and_clip(m, verts, out, nverts);
  int shaded = shade(1, light, normals, colors, nverts);
  return inside + shaded;
}
)";

WorkloadSetup viewperfSetup(vm::VM &M) {
  WorkloadSetup S;
  const int NVerts = 96;
  int64_t Mat = M.allocMemory(16);
  int64_t Verts = M.allocMemory(NVerts * 3);
  int64_t Out = M.allocMemory(NVerts * 4);
  int64_t Light = M.allocMemory(9);
  int64_t Normals = M.allocMemory(NVerts * 3);
  int64_t Colors = M.allocMemory(NVerts * 3);
  auto &Mem = M.memory();
  // Perspective projection matrix: ten zeroes, one unit entry.
  const double F = 1.8, Near = 0.1, Far = 100.0;
  const double P[16] = {F, 0, 0, 0,
                        0, F, 0, 0,
                        0, 0, (Far + Near) / (Near - Far),
                        2 * Far * Near / (Near - Far),
                        0, 0, -1.0, 0};
  for (int I = 0; I != 16; ++I)
    Mem[Mat + I] = Word::fromFloat(P[I]);
  // One light: white ambient 0, unit diffuse on G, direction with zeros.
  const double L[9] = {0.1, 0.0, 0.0, 1.0, 1.0, 0.5, 0.0, 1.0, 0.0};
  for (int I = 0; I != 9; ++I)
    Mem[Light + I] = Word::fromFloat(L[I]);
  DeterministicRNG RNG(0x7e4f);
  for (int I = 0; I != NVerts * 3; ++I) {
    Mem[Verts + I] = Word::fromFloat(RNG.nextDouble() * 2.0 - 1.0);
    Mem[Normals + I] = Word::fromFloat(RNG.nextDouble());
  }
  S.RegionArgs = {Word::fromInt(Mat), Word::fromInt(Verts),
                  Word::fromInt(Out), Word::fromInt(NVerts)};
  S.MainArgs = {Word::fromInt(Mat),     Word::fromInt(Verts),
                Word::fromInt(Out),     Word::fromInt(NVerts),
                Word::fromInt(Light),   Word::fromInt(Normals),
                Word::fromInt(Colors)};
  S.UnitsPerInvocation = NVerts;
  S.UnitName = "vertices";
  S.OutBase = Out;
  S.OutLen = NVerts * 4;
  return S;
}

} // namespace

Workload makeViewperfProject() {
  Workload W;
  W.Name = "viewperf:project&clip";
  W.Description = "renderer (matrix transform + clip test)";
  W.StaticVars = "3D projection matrix";
  W.StaticVals = "perspective matrix";
  W.IsKernel = false;
  W.Source = ProjectSource;
  W.RegionFunc = "project_and_clip";
  W.ExtraRegionFuncs = {"shade"};
  W.MainFunc = "viewperf_main";
  W.RegionInvocations = 20;
  W.Setup = viewperfSetup;
  return W;
}

Workload makeViewperfShade() {
  Workload W;
  W.Name = "viewperf:shade";
  W.Description = "renderer (vertex shader)";
  W.StaticVars = "lighting vars";
  W.StaticVals = "one light source";
  W.IsKernel = false;
  W.Source = ProjectSource;
  W.RegionFunc = "shade";
  W.MainFunc = "viewperf_main";
  W.RegionInvocations = 20;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S = viewperfSetup(M);
    // shade(mode=1, light, normals, colors, nverts)
    S.RegionArgs = {Word::fromInt(1), S.MainArgs[4], S.MainArgs[5],
                    S.MainArgs[6], S.MainArgs[3]};
    S.OutBase = S.MainArgs[6].asInt(); // colors
    S.OutLen = S.MainArgs[3].asInt() * 3;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
