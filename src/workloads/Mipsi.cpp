//===- workloads/Mipsi.cpp - MIPS R3000 simulation framework -----------------------===//
//
// mipsi interprets its input program; DyC specializes the interpreter for
// that program (Table 1: "its input program" = bubble sort). Multi-way
// complete loop unrolling over the static program counter effectively
// *compiles* the interpreted program: instruction fetches become static
// loads, decode logic folds away, and the address-translation routine is
// a static call memoized at dynamic-compile time (section 4.4.1). This is
// the paper's biggest speedup (5.0x region, 4.6x whole-program).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

const char *Source = R"(
/* Simple page-table address translation for instruction fetch; pure, so
   calls with static arguments run (memoized) at dynamic-compile time. */
pure int xlate(int* ptab, int vaddr) {
  return ptab[vaddr >> 6] + (vaddr & 63);
}

/* The interpreter. ISA (4 words per instruction):
   op: 0=li(a,c) 1=add(a,b,c) 2=ld(a,[rb+c]) 3=st([ra+c],rb)
       4=blt(ra<rb -> c) 5=jmp(c) 6=addi(a,b,c) 7=bge(ra>=rb -> c)
       8=halt */
int mipsi_run(int* prog, int nprog, int* ptab, int* mem, int* init,
              int nmem, int* regs) {
  /* reset simulated data memory from the pristine image (dynamic work,
     identical in both configurations) */
  int k;
  for (k = 0; k < nmem; k = k + 1) {
    mem[k] = init[k];
  }

  int pc = 0;
  make_static(prog, nprog, ptab, pc);
  while (pc < nprog) {               /* multi-way unrolled over pc */
    int base = xlate(ptab, pc) * 4;  /* static call, memoized */
    int op = prog@[base];            /* static loads: the fetch+decode */
    int a  = prog@[base + 1];
    int b  = prog@[base + 2];
    int c  = prog@[base + 3];
    if (op == 0) { regs[a] = c; pc = pc + 1; }
    else { if (op == 1) { regs[a] = regs[b] + regs[c]; pc = pc + 1; }
    else { if (op == 2) { regs[a] = mem[regs[b] + c]; pc = pc + 1; }
    else { if (op == 3) { mem[regs[a] + c] = regs[b]; pc = pc + 1; }
    else { if (op == 4) { if (regs[a] < regs[b]) { pc = c; } else { pc = pc + 1; } }
    else { if (op == 5) { pc = c; }
    else { if (op == 6) { regs[a] = regs[b] + c; pc = pc + 1; }
    else { if (op == 7) { if (regs[a] < regs[b]) { pc = pc + 1; } else { pc = c; } }
    else { pc = nprog; } } } } } } } }
  }
  return regs[2];
}
)";

void putInstr(std::vector<Word> &Mem, int64_t Prog, int Idx, int64_t Op,
              int64_t A, int64_t B, int64_t C) {
  Mem[Prog + Idx * 4 + 0] = Word::fromInt(Op);
  Mem[Prog + Idx * 4 + 1] = Word::fromInt(A);
  Mem[Prog + Idx * 4 + 2] = Word::fromInt(B);
  Mem[Prog + Idx * 4 + 3] = Word::fromInt(C);
}

} // namespace

Workload makeMipsi() {
  Workload W;
  W.Name = "mipsi";
  W.Description = "MIPS R3000 simulator";
  W.StaticVars = "its input program";
  W.StaticVals = "bubble sort";
  W.IsKernel = false;
  W.Source = Source;
  W.RegionFunc = "mipsi_run";
  W.MainFunc = "mipsi_run"; // the whole program IS the interpreter run
  W.RegionInvocations = 10;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int NElems = 24;
    int64_t Prog = M.allocMemory(64 * 4);
    int64_t PTab = M.allocMemory(8);
    int64_t Mem0 = M.allocMemory(NElems + 4);
    int64_t Init = M.allocMemory(NElems + 4);
    int64_t Regs = M.allocMemory(16);
    auto &Mem = M.memory();
    // Identity page table (one 64-entry page).
    for (int I = 0; I != 8; ++I)
      Mem[PTab + I] = Word::fromInt(I * 64);
    DeterministicRNG RNG(0x317051);
    for (int I = 0; I != NElems; ++I)
      Mem[Init + I] =
          Word::fromInt(static_cast<int64_t>(RNG.nextBelow(1000)));

    // Bubble sort over mem[0..NElems):
    //   r1=i r2=j r3=n r4=a[j] r5=a[j+1] r6=one r7=n-1 r8=i+j
    int N = 0;
    putInstr(Mem, Prog, N++, 0, 3, 0, NElems); //  0: li   r3, n
    putInstr(Mem, Prog, N++, 0, 6, 0, 1);      //  1: li   r6, 1
    putInstr(Mem, Prog, N++, 0, 1, 0, 0);      //  2: li   r1, 0   (i)
    putInstr(Mem, Prog, N++, 6, 7, 3, -1);     //  3: addi r7, r3, -1
    putInstr(Mem, Prog, N++, 7, 1, 7, 17);     //  4: bge  i, r7 -> 17
    putInstr(Mem, Prog, N++, 0, 2, 0, 0);      //  5: li   r2, 0   (j)
    putInstr(Mem, Prog, N++, 1, 8, 1, 2);      //  6: add  r8, i, j
    putInstr(Mem, Prog, N++, 7, 8, 7, 15);     //  7: bge  r8, r7 -> 15
    putInstr(Mem, Prog, N++, 2, 4, 2, 0);      //  8: ld   r4, [j+0]
    putInstr(Mem, Prog, N++, 2, 5, 2, 1);      //  9: ld   r5, [j+1]
    putInstr(Mem, Prog, N++, 4, 4, 5, 13);     // 10: blt  r4, r5 -> 13
    putInstr(Mem, Prog, N++, 3, 2, 5, 0);      // 11: st   [j+0], r5
    putInstr(Mem, Prog, N++, 3, 2, 4, 1);      // 12: st   [j+1], r4
    putInstr(Mem, Prog, N++, 1, 2, 2, 6);      // 13: add  j, j, 1
    putInstr(Mem, Prog, N++, 5, 0, 0, 6);      // 14: jmp  6
    putInstr(Mem, Prog, N++, 1, 1, 1, 6);      // 15: add  i, i, 1
    putInstr(Mem, Prog, N++, 5, 0, 0, 3);      // 16: jmp  3
    putInstr(Mem, Prog, N++, 8, 0, 0, 0);      // 17: halt

    S.RegionArgs = {Word::fromInt(Prog), Word::fromInt(N),
                    Word::fromInt(PTab), Word::fromInt(Mem0),
                    Word::fromInt(Init), Word::fromInt(NElems),
                    Word::fromInt(Regs)};
    S.MainArgs = S.RegionArgs;
    // One invocation interprets the whole program.
    S.UnitsPerInvocation = NElems * NElems * 4.0; // ~simulated instructions
    S.UnitName = "simulated instructions";
    S.OutBase = Mem0;
    S.OutLen = NElems;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
