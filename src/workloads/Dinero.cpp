//===- workloads/Dinero.cpp - dinero III cache simulator ---------------------------===//
//
// The paper's flagship application: a trace-driven cache simulator
// (Hill & Smith's dinero III), specialized for the cache configuration
// being simulated — "8kB I/D, direct-mapped, 32B blocks" (Table 1).
//
// DyC features exercised (Table 2 row "dinero: mainloop"): single-way
// complete loop unrolling (the per-block sub-word valid loop), static
// loads (configuration fields), unchecked dispatching, dynamic strength
// reduction (block/set arithmetic on power-of-two geometry becomes shifts
// and masks), and an internal dynamic-to-static promotion (the write
// policy is read from the trace header at run time, then promoted).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

const char *Source = R"(
/* dinero: trace-driven split I/D cache simulator. Like dinero III, the
   per-cache geometry is kept as precomputed shift/mask fields in the
   configuration record (loaded per reference in the static code; folded
   into immediates by dynamic compilation).
   config layout: [0]=ibshift [1]=ismask [2]=dbshift [3]=dsmask
                  [4]=dbsize [5]=dbwords
   trace layout:  [0]=write-policy header, then (addr, kind) pairs;
                  kind: 0 = ifetch, 1 = data read, 2 = data write.
   stats layout:  [0]=ihit [1]=imiss [2]=dhit [3]=dmiss [4]=writebacks */
int dinero_sim(int* config, int* trace, int ntrace,
               int* itags, int* dtags, int* ddirty, int* dvalid,
               int* stats) {
  make_static(config : cache_one_unchecked);
  int ibshift = config@[0];
  int ismask = config@[1];
  int dbshift = config@[2];
  int dsmask = config@[3];
  int dbsize = config@[4];
  int dbwords = config@[5];

  /* The write policy arrives in the trace header: a run-time value that
     is promoted to static mid-region (internal promotion). */
  int walloc = trace[0];
  make_static(walloc);

  int t;
  for (t = 0; t < ntrace; t = t + 1) {
    int addr = trace[1 + t * 2];
    int kind = trace[2 + t * 2];
    if (kind == 0) {
      /* instruction cache probe */
      int block = addr >> ibshift;
      int set = block & ismask;
      int tag = block >> 8;
      if (itags[set] == tag) {
        stats[0] = stats[0] + 1;
      } else {
        stats[1] = stats[1] + 1;
        itags[set] = tag;
      }
    } else {
      /* data cache probe, sub-block (word) validity tracked per block;
         the word index uses the raw block size (strength-reduced to
         shifts and masks by dynamic compilation) */
      int block = addr >> dbshift;
      int set = block & dsmask;
      int tag = block >> 8;
      int word = (addr % dbsize) / (dbsize / dbwords);
      if (dtags[set] == tag) {
        if (dvalid[set * dbwords + word] == 1) {
          stats[2] = stats[2] + 1;
        } else {
          stats[3] = stats[3] + 1;
          dvalid[set * dbwords + word] = 1;
        }
        if (kind == 2) { ddirty[set] = 1; }
      } else {
        stats[3] = stats[3] + 1;
        if (ddirty[set] == 1) {
          stats[4] = stats[4] + 1;
          ddirty[set] = 0;
        }
        if (kind == 2) {
          if (walloc == 1) {
            dtags[set] = tag;
            int w;
            make_static(w);
            for (w = 0; w < dbwords; w = w + 1) {  /* unrolled (static) */
              dvalid[set * dbwords + w] = 0;
            }
            dvalid[set * dbwords + word] = 1;
            ddirty[set] = 1;
          }
        } else {
          dtags[set] = tag;
          int w2;
          make_static(w2);
          for (w2 = 0; w2 < dbwords; w2 = w2 + 1) { /* unrolled (static) */
            dvalid[set * dbwords + w2] = 0;
          }
          dvalid[set * dbwords + word] = 1;
        }
      }
    }
  }
  return stats[1] + stats[3];
}

/* Whole-program driver: synthesizes the reference trace (the part of
   dinero that parses its input file), then simulates it. */
int dinero_main(int* config, int* trace, int ntrace,
                int* itags, int* dtags, int* ddirty, int* dvalid,
                int* stats) {
  /* trace preprocessing: relocate addresses and classify references,
     standing in for dinero's din-format input parsing */
  int t;
  int seed = 12345;
  for (t = 0; t < ntrace; t = t + 1) {
    seed = seed * 1103515245 + 12345;
    int r = seed % 65536;
    if (r < 0) { r = 0 - r; }
    int kind = 0;
    if (r % 16 < 6) { kind = 0; }
    else { if (r % 16 < 12) { kind = 1; } else { kind = 2; } }
    int addr = 0;
    if (kind == 0) { addr = 4096 + (r % 2048) * 4; }
    else { addr = 65536 + (r % 4096) * 8; }
    trace[1 + t * 2] = addr;
    trace[2 + t * 2] = kind;
  }
  trace[0] = 1; /* write-allocate */
  return dinero_sim(config, trace, ntrace, itags, dtags, ddirty, dvalid,
                    stats);
}
)";

} // namespace

Workload makeDinero() {
  Workload W;
  W.Name = "dinero";
  W.Description = "cache simulator";
  W.StaticVars = "cache configuration parameters";
  W.StaticVals = "8kB I/D, direct-mapped, 32B blocks";
  W.IsKernel = false;
  W.Source = Source;
  W.RegionFunc = "dinero_sim";
  W.MainFunc = "dinero_main";
  W.RegionInvocations = 3;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    // 8KB direct-mapped, 32B blocks: 256 sets each; 4 words per D-block.
    const int64_t INSets = 256, DNSets = 256, DBWords = 4;
    int64_t Config = M.allocMemory(6);
    int64_t NTrace = 6000;
    int64_t Trace = M.allocMemory(1 + NTrace * 2);
    int64_t ITags = M.allocMemory(INSets);
    int64_t DTags = M.allocMemory(DNSets);
    int64_t DDirty = M.allocMemory(DNSets);
    int64_t DValid = M.allocMemory(DNSets * DBWords);
    int64_t Stats = M.allocMemory(8);
    auto &Mem = M.memory();
    Mem[Config + 0] = Word::fromInt(5);          // ibshift (32B blocks)
    Mem[Config + 1] = Word::fromInt(INSets - 1); // ismask
    Mem[Config + 2] = Word::fromInt(5);          // dbshift
    Mem[Config + 3] = Word::fromInt(DNSets - 1); // dsmask
    Mem[Config + 4] = Word::fromInt(32);         // dbsize
    Mem[Config + 5] = Word::fromInt(DBWords);
    for (int64_t I = 0; I != INSets; ++I)
      Mem[ITags + I] = Word::fromInt(-1);
    for (int64_t I = 0; I != DNSets; ++I) {
      Mem[DTags + I] = Word::fromInt(-1);
      Mem[DDirty + I] = Word::fromInt(0);
    }
    // Deterministic synthetic reference trace with locality.
    DeterministicRNG RNG(0xd1e401);
    Mem[Trace] = Word::fromInt(1); // write-allocate header
    int64_t PC = 4096, DBase = 65536;
    for (int64_t T = 0; T != NTrace; ++T) {
      uint64_t R = RNG.next();
      int64_t Kind, Addr;
      if (R % 16 < 6) {
        Kind = 0;
        PC = (R % 32 == 0) ? 4096 + (int64_t)(RNG.nextBelow(2048)) * 4
                           : PC + 4;
        Addr = PC;
      } else {
        Kind = (R % 16 < 12) ? 1 : 2;
        Addr = DBase + (int64_t)(RNG.nextBelow(4096)) * 8;
      }
      Mem[Trace + 1 + T * 2] = Word::fromInt(Addr);
      Mem[Trace + 2 + T * 2] = Word::fromInt(Kind);
    }
    S.RegionArgs = {Word::fromInt(Config), Word::fromInt(Trace),
                    Word::fromInt(NTrace), Word::fromInt(ITags),
                    Word::fromInt(DTags),  Word::fromInt(DDirty),
                    Word::fromInt(DValid), Word::fromInt(Stats)};
    S.MainArgs = S.RegionArgs;
    S.UnitsPerInvocation = static_cast<double>(NTrace);
    S.UnitName = "memory references";
    S.OutBase = Stats;
    S.OutLen = 8;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
