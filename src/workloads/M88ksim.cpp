//===- workloads/M88ksim.cpp - Motorola 88000 simulator (SPEC95) -------------------===//
//
// The paper dynamically compiles one routine of m88ksim: ckbrkpts, the
// breakpoint check executed once per simulated instruction, specialized
// on the (usually empty) breakpoint table. With the SPEC input there are
// no breakpoints, so the entire scan folds away (Table 3: 6 instructions
// generated). The cache_one_unchecked policy is essential here — the
// region is entered per simulated instruction, and a hashed dispatch per
// entry would erase the win (section 4.4.3).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

const char *Source = R"(
/* Breakpoint table: 6 fixed slots of (enabled, address) pairs, as in
   m88ksim's fixed-size bp table. */
int ckbrkpts(int* bkpts, int pc) {
  int i;
  int hit = 0;
  make_static(bkpts, i : cache_one_unchecked);
  for (i = 0; i < 6; i = i + 1) {        /* unrolled (static bound) */
    int en = bkpts@[i * 2];              /* static load */
    if (en == 1) {                       /* folds at specialize time */
      hit = hit | (bkpts@[i * 2 + 1] == pc);
    }
  }
  return hit;
}

/* The surrounding simulator: a small 88k-flavored interpreter that calls
   ckbrkpts for every instruction it executes (the paper's usage). It is
   NOT annotated; only ckbrkpts is dynamically compiled, which is why
   m88ksim spends just ~10% of its time in the dynamic region (Table 4).
   ISA: op r[a], r[b], r[c]; encoded as 4 words per instruction.
   op: 0=li(a,imm) 1=add 2=sub 3=mul 4=ld(a,[b+imm]) 5=st([a+imm],b)
       6=bcnd(a!=0 -> imm) 7=br(imm) 8=halt */
int m88k_run(int* text, int ntext, int* data, int* regs, int* bkpts,
             int* pipe, int maxsteps) {
  int pc = 0;
  int steps = 0;
  int stopped = 0;
  while (stopped == 0) {
    if (ckbrkpts(bkpts, pc) == 1) { stopped = 1; }
    if (stopped == 0) {
      int base = pc * 4;
      int op = text[base];
      int a = text[base + 1];
      int b = text[base + 2];
      int c = text[base + 3];
      /* pipeline timing model: advance 8 stages, check a RAW hazard
         against the two most recent writers (m88ksim models the 88100
         pipeline in detail; this is the analogous per-instruction cost) */
      int st;
      int stall = 0;
      for (st = 0; st < 8; st = st + 1) {
        pipe[st] = pipe[st + 1];
        if (pipe[st] == a) { stall = stall + 1; }
      }
      pipe[8] = b;
      pipe[9] = c;
      data[66] = data[66] + stall;
      if (op == 0) { regs[a] = c; pc = pc + 1; }
      else { if (op == 1) { regs[a] = regs[b] + regs[c]; pc = pc + 1; }
      else { if (op == 2) { regs[a] = regs[b] - regs[c]; pc = pc + 1; }
      else { if (op == 3) { regs[a] = regs[b] * regs[c]; pc = pc + 1; }
      else { if (op == 4) { regs[a] = data[regs[b] + c]; pc = pc + 1; }
      else { if (op == 5) { data[regs[a] + c] = regs[b]; pc = pc + 1; }
      else { if (op == 6) { if (regs[a] != 0) { pc = c; } else { pc = pc + 1; } }
      else { if (op == 7) { pc = c; }
      else { stopped = 1; } } } } } } } }
      steps = steps + 1;
      if (steps >= maxsteps) { stopped = 1; }
      if (pc >= ntext) { stopped = 1; }
    }
  }
  return steps;
}
)";

/// Encodes one simulator instruction.
void putInstr(std::vector<Word> &Mem, int64_t Text, int Idx, int64_t Op,
              int64_t A, int64_t B, int64_t C) {
  Mem[Text + Idx * 4 + 0] = Word::fromInt(Op);
  Mem[Text + Idx * 4 + 1] = Word::fromInt(A);
  Mem[Text + Idx * 4 + 2] = Word::fromInt(B);
  Mem[Text + Idx * 4 + 3] = Word::fromInt(C);
}

} // namespace

Workload makeM88ksim() {
  Workload W;
  W.Name = "m88ksim";
  W.Description = "Motorola 88000 simulator";
  W.StaticVars = "an array of breakpoints";
  W.StaticVals = "no breakpoints";
  W.IsKernel = false;
  W.Source = Source;
  W.RegionFunc = "ckbrkpts";
  W.MainFunc = "m88k_run";
  W.RegionInvocations = 300;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    int64_t Bkpts = M.allocMemory(16); // 8 (enabled, addr) slots
    auto &Mem = M.memory();
    for (int I = 0; I != 16; ++I)
      Mem[Bkpts + I] = Word::fromInt(0); // SPEC input: no breakpoints

    // The simulated program: checksum over a data array with an inner
    // scale loop — enough work that m88k_run dominates execution.
    const int NData = 64;
    int64_t Text = M.allocMemory(64 * 4);
    int64_t Data = M.allocMemory(NData + 8);
    int64_t Regs = M.allocMemory(16);
    int64_t Pipe = M.allocMemory(12);
    DeterministicRNG RNG(0x88000);
    for (int I = 0; I != NData; ++I)
      Mem[Data + I] = Word::fromInt(static_cast<int64_t>(RNG.nextBelow(97)));
    for (int I = 0; I != 16; ++I)
      Mem[Regs + I] = Word::fromInt(0);
    // r1 = i, r2 = sum, r3 = limit, r4 = tmp, r5 = const 1
    int N = 0;
    putInstr(Mem, Text, N++, 0, 1, 0, 0);      // li r1, 0
    putInstr(Mem, Text, N++, 0, 2, 0, 0);      // li r2, 0
    putInstr(Mem, Text, N++, 0, 3, 0, NData);  // li r3, NData
    putInstr(Mem, Text, N++, 0, 5, 0, 1);      // li r5, 1
    int Loop = N;
    putInstr(Mem, Text, N++, 4, 4, 1, 0);      // ld r4, [r1+0]
    putInstr(Mem, Text, N++, 3, 4, 4, 4);      // mul r4, r4, r4
    putInstr(Mem, Text, N++, 1, 2, 2, 4);      // add r2, r2, r4
    putInstr(Mem, Text, N++, 1, 1, 1, 5);      // add r1, r1, r5
    putInstr(Mem, Text, N++, 2, 4, 3, 1);      // sub r4, r3, r1
    putInstr(Mem, Text, N++, 6, 4, 0, Loop);   // bcnd r4 != 0 -> Loop
    putInstr(Mem, Text, N++, 5, 6, 2, NData);  // st [r6+NData], r2
    putInstr(Mem, Text, N++, 8, 0, 0, 0);      // halt

    S.RegionArgs = {Word::fromInt(Bkpts), Word::fromInt(4096)};
    S.MainArgs = {Word::fromInt(Text),  Word::fromInt(N),
                  Word::fromInt(Data),  Word::fromInt(Regs),
                  Word::fromInt(Bkpts), Word::fromInt(Pipe),
                  Word::fromInt(100000)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "breakpoint checks";
    S.OutBase = Data + NData;
    S.OutLen = 1;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
