//===- workloads/Pnmconvol.cpp - netpbm image convolution ---------------------------===//
//
// The paper's running example (Figures 2-4): convolve an image with a
// convolution matrix whose contents are run-time constants. Complete
// unrolling of the loops over the 11x11 kernel (9% ones, 83% zeroes)
// exposes the weights; zero/copy propagation folds multiplies by 0.0 and
// 1.0 into clears and moves, and dead-assignment elimination then deletes
// the now-dead image loads and address arithmetic. Without DAE the
// generated loop body overflows the L1 I-cache and the dynamic code runs
// *slower* than static code (section 4.4.4) — reproduced here.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

const char *Source = R"(
/* Convolve image (irows x icols) with cmatrix (crows x ccols) into
   outbuf. Borders are handled by branchless index clamping, as real
   pnmconvol handles edge rows/columns with replicated samples. */
void do_convol(double* image, int irows, int icols,
               double* cmatrix, int crows, int ccols,
               double* outbuf) {
  int crow;
  int ccol;
  make_static(cmatrix, crows, ccols, crow, ccol : cache_one_unchecked);
  int crowso2 = crows / 2;
  int ccolso2 = ccols / 2;
  int irow;
  int icol;
  for (irow = 0; irow < irows; irow = irow + 1) {
    int rowbase = irow - crowso2;
    for (icol = 0; icol < icols; icol = icol + 1) {
      int colbase = icol - ccolso2;
      double sum = 0.0;
      for (crow = 0; crow < crows; crow = crow + 1) {       /* unrolled */
        for (ccol = 0; ccol < ccols; ccol = ccol + 1) {     /* unrolled */
          double weight = cmatrix@[crow * ccols + ccol];    /* static */
          int r0 = rowbase + crow;
          int c0 = colbase + ccol;
          /* clamp to [0, irows-1] x [0, icols-1], branchless */
          int r1 = r0 * (1 - (r0 < 0));
          int rhi = r1 > irows - 1;
          int r2 = r1 * (1 - rhi) + (irows - 1) * rhi;
          int c1 = c0 * (1 - (c0 < 0));
          int chi = c1 > icols - 1;
          int c2 = c1 * (1 - chi) + (icols - 1) * chi;
          double x = image[r2 * icols + c2];
          double weighted_x = x * weight;
          sum = sum + weighted_x;
        }
      }
      outbuf[irow * icols + icol] = sum;
    }
  }
}

/* Whole program: generate the input image (standing in for PNM parsing),
   then convolve it. */
void pnm_main(double* image, int irows, int icols,
              double* cmatrix, int crows, int ccols, double* outbuf) {
  int i;
  int n = irows * icols;
  int seed = 99991;
  for (i = 0; i < n; i = i + 1) {
    seed = seed * 1103515245 + 12345;
    int v = seed % 256;
    if (v < 0) { v = 0 - v; }
    image[i] = (double)v / 255.0;
  }
  do_convol(image, irows, icols, cmatrix, crows, ccols, outbuf);
}
)";

} // namespace

Workload makePnmconvol() {
  Workload W;
  W.Name = "pnmconvol";
  W.Description = "image convolution";
  W.StaticVars = "convolution matrix";
  W.StaticVals = "11x11 with 9% ones, 83% zeroes";
  W.IsKernel = false;
  W.Source = Source;
  W.RegionFunc = "do_convol";
  W.MainFunc = "pnm_main";
  W.RegionInvocations = 3;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int IRows = 16, ICols = 16, CRows = 11, CCols = 11;
    int64_t Image = M.allocMemory(IRows * ICols);
    int64_t CMat = M.allocMemory(CRows * CCols);
    int64_t Out = M.allocMemory(IRows * ICols);
    auto &Mem = M.memory();
    DeterministicRNG RNG(0x9199);
    for (int I = 0; I != IRows * ICols; ++I)
      Mem[Image + I] = Word::fromFloat(RNG.nextDouble());
    // 121 weights: 9% ones (11), 83% zeroes (100), 8% other (10) — the
    // paper's input mix, deterministically shuffled.
    std::vector<double> Weights;
    for (int I = 0; I != 11; ++I)
      Weights.push_back(1.0);
    for (int I = 0; I != 100; ++I)
      Weights.push_back(0.0);
    for (int I = 0; I != 10; ++I)
      Weights.push_back(0.25 + 0.05 * I);
    for (size_t I = Weights.size(); I > 1; --I)
      std::swap(Weights[I - 1], Weights[RNG.nextBelow(I)]);
    for (int I = 0; I != CRows * CCols; ++I)
      Mem[CMat + I] = Word::fromFloat(Weights[static_cast<size_t>(I)]);

    S.RegionArgs = {Word::fromInt(Image), Word::fromInt(IRows),
                    Word::fromInt(ICols), Word::fromInt(CMat),
                    Word::fromInt(CRows), Word::fromInt(CCols),
                    Word::fromInt(Out)};
    S.MainArgs = S.RegionArgs;
    S.UnitsPerInvocation = IRows * ICols;
    S.UnitName = "pixels";
    S.OutBase = Out;
    S.OutLen = IRows * ICols;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
