//===- workloads/Workload.cpp - Workload registry -----------------------------------===//

#include "workloads/Workload.h"

#include "support/Support.h"

namespace dyc {
namespace workloads {

const std::vector<Workload> &allWorkloads() {
  static const std::vector<Workload> All = [] {
    std::vector<Workload> V;
    V.push_back(makeDinero());
    V.push_back(makeM88ksim());
    V.push_back(makeMipsi());
    V.push_back(makePnmconvol());
    V.push_back(makeViewperfProject());
    V.push_back(makeViewperfShade());
    V.push_back(makeBinary());
    V.push_back(makeChebyshev());
    V.push_back(makeDotproduct());
    V.push_back(makeQuery());
    V.push_back(makeRomberg());
    return V;
  }();
  return All;
}

const Workload &workloadByName(const std::string &Name) {
  for (const Workload &W : allWorkloads())
    if (W.Name == Name)
      return W;
  fatal("unknown workload '" + Name + "'");
}

} // namespace workloads
} // namespace dyc
