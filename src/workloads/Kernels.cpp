//===- workloads/Kernels.cpp - The kernel benchmark suite ---------------------------===//
//
// The five kernels used by earlier dynamic-compilation systems (`C,
// Tempo), included by the paper "to provide continuity to previous
// studies" (section 3.1): binary, chebyshev, dotproduct, query, romberg,
// with the paper's inputs (Table 1).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

namespace dyc {
namespace workloads {

namespace {

//===----------------------------------------------------------------------===//
// binary — binary search over a static array (multi-way unrolling: the
// search unrolls into a comparison tree over the array's contents).
//===----------------------------------------------------------------------===//

const char *BinarySource = R"(
int bsearch(int* arr, int n, int key) {
  int lo = 0;
  int hi = n - 1;
  int found = 0 - 1;
  make_static(arr, n, lo, hi, found : cache_one_unchecked);
  while (lo <= hi) {                 /* static bounds: unrolls */
    int mid = (lo + hi) / 2;
    int v = arr@[mid];               /* static load */
    if (key < v) { hi = mid - 1; }
    else {
      if (v < key) { lo = mid + 1; }
      else { found = mid; lo = hi + 1; }
    }
  }
  return found;
}

/* driver: a batch of lookups */
int binary_main(int* arr, int n, int* keys, int nkeys, int* results) {
  int i;
  int hits = 0;
  for (i = 0; i < nkeys; i = i + 1) {
    int r = bsearch(arr, n, keys[i]);
    results[i] = r;
    if (r >= 0) { hits = hits + 1; }
  }
  return hits;
}
)";

//===----------------------------------------------------------------------===//
// chebyshev — polynomial function approximation; the coefficient
// computation is dominated by calls to cosine, which become static calls
// memoized at dynamic-compile time (section 4.4.4: "treating calls to
// cosine as static ... turned a marginal 20% advantage into a 6-fold
// speedup").
//===----------------------------------------------------------------------===//

const char *ChebyshevSource = R"(
extern pure double cos(double);

/* Evaluate a degree-n Chebyshev-style cosine series at x; coefficients
   c_j = cos(omega*j)/(1+j) are recomputed per call in the static code and
   folded to immediates in the dynamic code. */
double cheby(double x, int n) {
  int j;
  make_static(n, j : cache_one_unchecked);
  double omega = 0.73;
  double d = 0.0;
  double dd = 0.0;
  double y2 = x * 2.0;
  for (j = n - 1; j > 0; j = j - 1) {      /* unrolled (static) */
    double cj = cos(omega * (double)j) / (1.0 + (double)j);   /* static */
    double sv = d;
    d = y2 * d - dd + cj;
    dd = sv;
  }
  return x * d - dd + cos(0.0) / 2.0;
}

double cheby_main(double* xs, int nxs, int degree, double* out) {
  int i;
  double acc = 0.0;
  for (i = 0; i < nxs; i = i + 1) {
    double v = cheby(xs[i], degree);
    out[i] = v;
    acc = acc + v;
  }
  return acc;
}
)";

//===----------------------------------------------------------------------===//
// dotproduct — dot product with one static vector, 90% zeroes: unrolling
// plus static loads expose the elements; zero folding eliminates most of
// the multiply/accumulate chains and the feeding loads.
//===----------------------------------------------------------------------===//

const char *DotproductSource = R"(
int dotp(int* a, int* b, int n) {
  int i;
  make_static(a, n, i : cache_one_unchecked);
  int sum = 0;
  for (i = 0; i < n; i = i + 1) {          /* unrolled (static) */
    sum = sum + a@[i] * b[i];              /* static load feeds mul */
  }
  return sum;
}

int dotp_main(int* a, int* b, int n, int reps) {
  int r;
  int acc = 0;
  for (r = 0; r < reps; r = r + 1) {
    b[r % n] = b[r % n] + 1;               /* perturb the dynamic vector */
    acc = acc + dotp(a, b, n);
  }
  return acc;
}
)";

//===----------------------------------------------------------------------===//
// query — tests a database record against a static query of 7
// comparisons; the per-field operator selection folds away and the
// comparison constants pack into immediates.
//===----------------------------------------------------------------------===//

const char *QuerySource = R"(
/* q layout: 7 (op, value) pairs. op: 0 '>=', 1 '<=', 2 '==', 3 ignore. */
int query(int* q, int* rec) {
  int f;
  make_static(q, f : cache_one_unchecked);
  int ok = 1;
  for (f = 0; f < 7; f = f + 1) {          /* unrolled (static) */
    int op = q@[f * 2];                    /* static load */
    int val = q@[f * 2 + 1];               /* static load */
    if (op == 0) { ok = ok & (rec[f] >= val); }
    else { if (op == 1) { ok = ok & (rec[f] <= val); }
    else { if (op == 2) { ok = ok & (rec[f] == val); } } }
  }
  return ok;
}

int query_main(int* q, int* db, int nrecs, int* matches) {
  int i;
  int n = 0;
  for (i = 0; i < nrecs; i = i + 1) {
    int m = query(q, db + i * 7);
    matches[i] = m;
    n = n + m;
  }
  return n;
}
)";

//===----------------------------------------------------------------------===//
// romberg — Romberg integration with a static iteration bound (6): both
// the trapezoid refinement loops and the Richardson-extrapolation table
// loops unroll completely; the 4^k - 1 divisors fold to immediates.
//===----------------------------------------------------------------------===//

const char *RombergSource = R"(
/* Integrate f(x) = 4/(1+x^2) over [a,b] with m Romberg levels; r is an
   m*m scratch table. Integrating over [0,1] yields pi. */
double romberg(double a, double b, int m, double* r) {
  int i;
  int j;
  int k;
  make_static(m, i, j, k : cache_one_unchecked);
  double h = b - a;
  double fa = 4.0 / (1.0 + a * a);
  double fb = 4.0 / (1.0 + b * b);
  r[0] = (fa + fb) * h / 2.0;
  for (i = 1; i < m; i = i + 1) {          /* unrolled (static) */
    h = h / 2.0;
    double s = 0.0;
    int n1 = 1 << (i - 1);                 /* static */
    for (k = 1; k <= n1; k = k + 1) {      /* unrolled (static) */
      double x = a + (2.0 * (double)k - 1.0) * h;
      s = s + 4.0 / (1.0 + x * x);
    }
    r[i * m] = r[(i - 1) * m] / 2.0 + s * h;
    for (j = 1; j <= i; j = j + 1) {       /* unrolled (static) */
      double denom = (double)((1 << (2 * j)) - 1);   /* static */
      r[i * m + j] = r[i * m + j - 1]
          + (r[i * m + j - 1] - r[(i - 1) * m + j - 1]) / denom;
    }
  }
  return r[(m - 1) * m + (m - 1)];
}

double romberg_main(int m, double* r, double* out, int nints) {
  int i;
  double acc = 0.0;
  for (i = 0; i < nints; i = i + 1) {
    double v = romberg(0.0, 1.0 + (double)i * 0.125, m, r);
    out[i] = v;
    acc = acc + v;
  }
  return acc;
}
)";

} // namespace

Workload makeBinary() {
  Workload W;
  W.Name = "binary";
  W.Description = "binary search over an array";
  W.StaticVars = "the input array and its contents";
  W.StaticVals = "16 integers";
  W.IsKernel = true;
  W.Source = BinarySource;
  W.RegionFunc = "bsearch";
  W.MainFunc = "binary_main";
  W.RegionInvocations = 300;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int N = 16, NKeys = 256;
    int64_t Arr = M.allocMemory(N);
    int64_t Keys = M.allocMemory(NKeys);
    int64_t Results = M.allocMemory(NKeys);
    auto &Mem = M.memory();
    for (int I = 0; I != N; ++I)
      Mem[Arr + I] = Word::fromInt(I * 7 + 3);
    DeterministicRNG RNG(0xb1a2);
    for (int I = 0; I != NKeys; ++I)
      Mem[Keys + I] =
          Word::fromInt(static_cast<int64_t>(RNG.nextBelow(130)));
    S.RegionArgs = {Word::fromInt(Arr), Word::fromInt(N),
                    Word::fromInt(45)};
    S.MainArgs = {Word::fromInt(Arr), Word::fromInt(N),
                  Word::fromInt(Keys), Word::fromInt(NKeys),
                  Word::fromInt(Results)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "searches";
    S.OutBase = Results;
    S.OutLen = NKeys;
    return S;
  };
  return W;
}

Workload makeChebyshev() {
  Workload W;
  W.Name = "chebyshev";
  W.Description = "polynomial function approximation";
  W.StaticVars = "the degree of the polynomial";
  W.StaticVals = "10";
  W.IsKernel = true;
  W.Source = ChebyshevSource;
  W.RegionFunc = "cheby";
  W.MainFunc = "cheby_main";
  W.RegionInvocations = 200;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int NXs = 64;
    int64_t Xs = M.allocMemory(NXs);
    int64_t Out = M.allocMemory(NXs);
    auto &Mem = M.memory();
    DeterministicRNG RNG(0xc4eb);
    for (int I = 0; I != NXs; ++I)
      Mem[Xs + I] = Word::fromFloat(RNG.nextDouble() * 2.0 - 1.0);
    S.RegionArgs = {Word::fromFloat(0.37), Word::fromInt(10)};
    S.MainArgs = {Word::fromInt(Xs), Word::fromInt(NXs), Word::fromInt(10),
                  Word::fromInt(Out)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "interpolations";
    S.OutBase = Out;
    S.OutLen = NXs;
    return S;
  };
  return W;
}

Workload makeDotproduct() {
  Workload W;
  W.Name = "dotproduct";
  W.Description = "dot-product of two vectors";
  W.StaticVars = "the contents of one of the vectors";
  W.StaticVals = "a 100-integer array with 90% zeroes";
  W.IsKernel = true;
  W.Source = DotproductSource;
  W.RegionFunc = "dotp";
  W.MainFunc = "dotp_main";
  W.RegionInvocations = 200;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int N = 100;
    int64_t A = M.allocMemory(N);
    int64_t B = M.allocMemory(N);
    auto &Mem = M.memory();
    DeterministicRNG RNG(0xd07);
    // 90 zeroes, a few ones and powers of two, the rest odd values.
    for (int I = 0; I != N; ++I) {
      int64_t V = 0;
      if (I % 10 == 3)
        V = (I % 20 == 3) ? 1 : ((I % 30 == 13) ? 8 : 5 + I % 7);
      Mem[A + I] = Word::fromInt(V);
      Mem[B + I] = Word::fromInt(static_cast<int64_t>(RNG.nextBelow(50)));
    }
    S.RegionArgs = {Word::fromInt(A), Word::fromInt(B), Word::fromInt(N)};
    S.MainArgs = {Word::fromInt(A), Word::fromInt(B), Word::fromInt(N),
                  Word::fromInt(500)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "dot products";
    S.OutBase = B;
    S.OutLen = N;
    return S;
  };
  return W;
}

Workload makeQuery() {
  Workload W;
  W.Name = "query";
  W.Description = "tests database entry for match";
  W.StaticVars = "a query";
  W.StaticVals = "7 comparisons";
  W.IsKernel = true;
  W.Source = QuerySource;
  W.RegionFunc = "query";
  W.MainFunc = "query_main";
  W.RegionInvocations = 300;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int NRecs = 512;
    int64_t Q = M.allocMemory(14);
    int64_t Db = M.allocMemory(NRecs * 7);
    int64_t Matches = M.allocMemory(NRecs);
    auto &Mem = M.memory();
    const int64_t Ops[7] = {0, 1, 2, 0, 1, 0, 2};
    const int64_t Vals[7] = {10, 90, 42, 5, 75, 33, 7};
    for (int I = 0; I != 7; ++I) {
      Mem[Q + I * 2] = Word::fromInt(Ops[I]);
      Mem[Q + I * 2 + 1] = Word::fromInt(Vals[I]);
    }
    DeterministicRNG RNG(0x9e4);
    for (int I = 0; I != NRecs * 7; ++I)
      Mem[Db + I] = Word::fromInt(static_cast<int64_t>(RNG.nextBelow(100)));
    S.RegionArgs = {Word::fromInt(Q), Word::fromInt(Db)};
    S.MainArgs = {Word::fromInt(Q), Word::fromInt(Db),
                  Word::fromInt(NRecs), Word::fromInt(Matches)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "database entry comparisons";
    S.OutBase = Matches;
    S.OutLen = NRecs;
    return S;
  };
  return W;
}

Workload makeRomberg() {
  Workload W;
  W.Name = "romberg";
  W.Description = "function integration by iteration";
  W.StaticVars = "the iteration bound";
  W.StaticVals = "6";
  W.IsKernel = true;
  W.Source = RombergSource;
  W.RegionFunc = "romberg";
  W.MainFunc = "romberg_main";
  W.RegionInvocations = 100;
  W.Setup = [](vm::VM &M) {
    WorkloadSetup S;
    const int Mlev = 6, NInts = 64;
    int64_t R = M.allocMemory(Mlev * Mlev);
    int64_t Out = M.allocMemory(NInts);
    S.RegionArgs = {Word::fromFloat(0.0), Word::fromFloat(1.0),
                    Word::fromInt(Mlev), Word::fromInt(R)};
    S.MainArgs = {Word::fromInt(Mlev), Word::fromInt(R),
                  Word::fromInt(Out), Word::fromInt(NInts)};
    S.UnitsPerInvocation = 1;
    S.UnitName = "integrations";
    S.OutBase = Out;
    S.OutLen = NInts;
    return S;
  };
  return W;
}

} // namespace workloads
} // namespace dyc
