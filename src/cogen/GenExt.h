//===- cogen/GenExt.h - Generating extensions -----------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of the dynamic-compiler generator: one GenExtFunction per
/// annotated function. Each BTA context is lowered into a straight-line
/// array of set-up operations with embedded emit directives (the paper's
/// "emit code sequences inserted into the set-up code", section 2.1). The
/// run-time specializer executes these arrays directly; it consults no IR
/// and performs no analysis — all planning (hole positions, zero/copy
/// propagation candidacy, deferability for dead-assignment elimination,
/// dispatch descriptors, exit resume points) happened here, at static
/// compile time.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_COGEN_GENEXT_H
#define DYC_COGEN_GENEXT_H

#include "bta/BindingTime.h"
#include "vm/Bytecode.h"

#include <vector>

namespace dyc {
namespace cogen {

/// One operand of a template instruction: either a run-time register (a
/// hole is unnecessary) or a static register whose specialize-time value is
/// instantiated at emit time (a hole).
struct Operand {
  ir::Reg R = ir::NoReg;
  bool Static = false;
};

/// One set-up operation.
struct SetupOp {
  enum Kind : uint8_t {
    EvalConst, ///< state[Dst] <- Imm (bit pattern; Ty selects int/float)
    Eval,      ///< state[Dst] <- Op(state[A], state[B]) — static computation
    EvalLoad,  ///< state[Dst] <- Mem[state[A] + Imm] — static load (`@`)
    EvalCall,  ///< state[Dst] <- call at specialize time (memoized)
    EmitInstr, ///< emit one dynamic instruction (with holes filled)
  } K = Eval;

  ir::Opcode Op = ir::Opcode::Mov; ///< semantic operation (Eval/EmitInstr)
  ir::Type Ty = ir::Type::I64;     ///< result type
  ir::Reg Dst = ir::NoReg;
  Operand A, B;
  int64_t Imm = 0;

  // Calls.
  int32_t Callee = -1;
  bool IsExt = false;
  std::vector<Operand> Args;

  // --- Static plans for the staged run-time optimizations ------------------
  /// Zero/copy-propagation candidate: exactly one operand is static, so the
  /// emitter checks its value for 0/1 at emit time (section 2.2.7).
  bool ZcpCand = false;
  /// Strength-reduction candidate: integer mul/div/rem with one static
  /// operand (power-of-two rewrites).
  bool SrCand = false;
  /// The instruction is pure and its result is not live out of the block,
  /// so its emission may be deferred; if nothing ever reads the result, the
  /// instruction was a dead assignment and is never emitted.
  bool Deferrable = false;
};

/// How a context's terminator is specialized.
struct GenTerm {
  enum Kind : uint8_t { Ret, Br, CondBr } K = Ret;
  Operand RetVal;  ///< Ret (R == NoReg for void returns)
  Operand Cond;    ///< CondBr; Cond.Static means the branch folds away
  bta::Edge TrueE, FalseE;
};

/// One lowered context.
struct GenBlock {
  uint32_t CtxId = 0;
  std::vector<SetupOp> Ops;
  GenTerm Term;
};

/// The generating extension for one annotated function.
struct GenExtFunction {
  int FuncIdx = -1;
  bta::RegionInfo Region;
  std::vector<GenBlock> Blocks; ///< index == context id

  // Frame layout facts shared with the lowered static code.
  uint32_t NumRegs = 0;    ///< total frame registers (incl. staging/scratch)
  uint32_t StageBase = 0;  ///< contiguous call-argument staging area
  uint32_t Scratch0 = 0;   ///< emitter scratch registers
  uint32_t Scratch1 = 0;

  /// Block id -> PC in the function's static code object (exit resumes).
  std::vector<uint32_t> BlockPC;

  /// Types of the function's virtual registers (so the emitter picks FMov
  /// vs. Mov and ConstF vs. ConstI without consulting the IR).
  std::vector<ir::Type> RegTypes;
};

} // namespace cogen
} // namespace dyc

#endif // DYC_COGEN_GENEXT_H
