//===- cogen/CompilerGenerator.cpp -------------------------------------------------===//

#include "cogen/CompilerGenerator.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"
#include "ir/ConstEval.h"

namespace dyc {
namespace cogen {

using namespace ir;

namespace {

bool isUnaryOp(Opcode Op) {
  switch (Op) {
  case Opcode::Mov: case Opcode::Neg: case Opcode::FNeg:
  case Opcode::IToF: case Opcode::FToI:
    return true;
  default:
    return false;
  }
}

/// Zero/copy-propagation candidacy (section 2.2.7): one static operand on
/// an operation a special value could reduce to a move or clear.
bool zcpCandidate(Opcode Op, bool AStatic, bool BStatic) {
  if (AStatic == BStatic)
    return false;
  switch (Op) {
  case Opcode::Mul: case Opcode::FMul:
  case Opcode::Add: case Opcode::FAdd:
    return true;
  case Opcode::Sub: case Opcode::FSub:
  case Opcode::Div: case Opcode::FDiv:
    return BStatic; // x-0, x/1; (0-x, 1/x do not reduce to moves)
  default:
    return false;
  }
}

/// Strength-reduction candidacy: integer multiply/divide/remainder with a
/// single static operand.
bool srCandidate(Opcode Op, bool AStatic, bool BStatic) {
  if (AStatic == BStatic)
    return false;
  switch (Op) {
  case Opcode::Mul:
    return true;
  case Opcode::Div: case Opcode::Rem:
    return BStatic;
  default:
    return false;
  }
}

/// True for instructions whose emission may be deferred (pure value
/// producers); combined with "result not live out of the block", this is
/// the static plan for dynamic dead-assignment elimination.
bool deferrableOp(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Load:
    return true; // plain (dynamic) loads; static loads are set-up ops
  case Opcode::ConstI:
  case Opcode::ConstF:
    return true;
  default:
    return isEvaluableOp(I.Op);
  }
}

} // namespace

GenExtFunction buildGenExt(const Function &F, const Module &M,
                           bta::RegionInfo Region, const LoweredFunction &LF,
                           const OptFlags &Flags) {
  GenExtFunction GX;
  GX.FuncIdx = Region.FuncIdx;
  GX.StageBase = LF.StageBase;
  GX.Scratch0 = LF.Scratch0;
  GX.Scratch1 = LF.Scratch1;
  GX.NumRegs = LF.Scratch1 + 1;
  GX.BlockPC = LF.BlockPC;
  GX.RegTypes.reserve(F.numRegs());
  for (Reg R = 0; R != F.numRegs(); ++R)
    GX.RegTypes.push_back(F.regType(R));

  analysis::CFG G(F);
  analysis::Liveness LV(F, G);

  for (const bta::Context &C : Region.Contexts) {
    GenBlock GB;
    GB.CtxId = C.Id;
    const BasicBlock &BB = F.block(C.Block);
    const BitVector &LiveOut = LV.liveOut(C.Block);

    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      const Instruction &I = BB.Instrs[Idx];
      const BitVector &Pre = C.PreSets[Idx];
      auto Opnd = [&](Reg R) {
        return Operand{R, R != NoReg && Pre.test(R)};
      };

      if (I.isAnnotation()) {
        // A make_dynamic demotion mid-block must materialize the demoted
        // variables' values into their run-time registers if still used.
        if (I.Op == Opcode::MakeDynamic) {
          BitVector LiveAfter = LV.liveBefore(F, C.Block, Idx + 1);
          for (Reg V : I.AnnotVars) {
            if (!Pre.test(V) || !LiveAfter.test(V))
              continue;
            SetupOp Mat;
            Mat.K = SetupOp::EmitInstr;
            Mat.Op = Opcode::Mov;
            Mat.Ty = F.regType(V);
            Mat.Dst = V;
            Mat.A = Operand{V, /*Static=*/true};
            GB.Ops.push_back(std::move(Mat));
          }
        }
        continue;
      }

      if (I.isTerminator()) {
        GenTerm T;
        switch (I.Op) {
        case Opcode::Ret:
          T.K = GenTerm::Ret;
          T.RetVal = Opnd(I.Src1);
          break;
        case Opcode::Br:
          T.K = GenTerm::Br;
          T.TrueE = C.TrueEdge;
          break;
        case Opcode::CondBr:
          T.K = GenTerm::CondBr;
          T.Cond = Operand{I.Src1, C.TermCondStatic};
          T.TrueE = C.TrueEdge;
          T.FalseE = C.FalseEdge;
          break;
        default:
          fatal("unexpected terminator in cogen");
        }
        GB.Term = T;
        break; // terminator is last
      }

      SetupOp Op;
      Op.Op = I.Op;
      Op.Ty = I.Ty;
      Op.Dst = I.Dst;
      Op.Imm = I.Imm;

      if (C.InstIsStatic[Idx]) {
        switch (I.Op) {
        case Opcode::ConstI:
          Op.K = SetupOp::EvalConst;
          Op.Imm = static_cast<int64_t>(Word::fromInt(I.Imm).Bits);
          break;
        case Opcode::ConstF:
          Op.K = SetupOp::EvalConst;
          break;
        case Opcode::Load:
          Op.K = SetupOp::EvalLoad;
          Op.A = Opnd(I.Src1);
          break;
        case Opcode::Call:
        case Opcode::CallExt:
          Op.K = SetupOp::EvalCall;
          Op.Callee = I.Callee;
          Op.IsExt = I.Op == Opcode::CallExt;
          for (Reg A : I.Args)
            Op.Args.push_back(Opnd(A));
          break;
        default:
          assert(isEvaluableOp(I.Op) && "static op is not evaluable");
          Op.K = SetupOp::Eval;
          Op.A = Opnd(I.Src1);
          if (!isUnaryOp(I.Op))
            Op.B = Opnd(I.Src2);
          break;
        }
      } else {
        Op.K = SetupOp::EmitInstr;
        switch (I.Op) {
        case Opcode::Store:
          Op.A = Opnd(I.Src1); // address
          Op.B = Opnd(I.Src2); // value
          break;
        case Opcode::Call:
        case Opcode::CallExt:
          Op.Callee = I.Callee;
          Op.IsExt = I.Op == Opcode::CallExt;
          for (Reg A : I.Args)
            Op.Args.push_back(Opnd(A));
          break;
        default:
          Op.A = Opnd(I.Src1);
          if (!isUnaryOp(I.Op) && I.Src2 != NoReg)
            Op.B = Opnd(I.Src2);
          break;
        }
        Op.ZcpCand = zcpCandidate(I.Op, Op.A.Static, Op.B.Static);
        Op.SrCand = srCandidate(I.Op, Op.A.Static, Op.B.Static);
        Op.Deferrable = Flags.DeadAssignmentElimination &&
                        deferrableOp(I) && I.Dst != NoReg &&
                        !LiveOut.test(I.Dst);
      }
      GB.Ops.push_back(std::move(Op));
    }

    GX.Blocks.push_back(std::move(GB));
  }

  GX.Region = std::move(Region);
  return GX;
}

std::string printGenExt(const GenExtFunction &GX, const Function &F) {
  std::string Out = formatString(
      "generating extension for '%s': %zu contexts\n", F.Name.c_str(),
      GX.Blocks.size());
  auto OpndStr = [&](const Operand &O) {
    if (O.R == NoReg)
      return std::string("-");
    return (O.Static ? "$" : "") + F.regName(O.R);
  };
  for (const GenBlock &GB : GX.Blocks) {
    Out += formatString("ctx%u:\n", GB.CtxId);
    for (const SetupOp &Op : GB.Ops) {
      const char *K = Op.K == SetupOp::EvalConst  ? "const"
                      : Op.K == SetupOp::Eval     ? "eval "
                      : Op.K == SetupOp::EvalLoad ? "load "
                      : Op.K == SetupOp::EvalCall ? "call "
                                                  : "EMIT ";
      Out += formatString("  %s %s %s <- %s, %s", K, opcodeName(Op.Op),
                          Op.Dst == NoReg ? "-" : F.regName(Op.Dst).c_str(),
                          OpndStr(Op.A).c_str(), OpndStr(Op.B).c_str());
      if (Op.K == SetupOp::EmitInstr) {
        if (Op.ZcpCand)
          Out += " [zcp]";
        if (Op.SrCand)
          Out += " [sr]";
        if (Op.Deferrable)
          Out += " [defer]";
      }
      Out += "\n";
    }
  }
  return Out;
}

} // namespace cogen
} // namespace dyc
