//===- cogen/CompilerGenerator.h - Dynamic-compiler generator --------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds generating extensions: the static compile-time component that
/// turns BTA results into per-context set-up/emit programs the run-time
/// specializer executes directly (paper section 2.1, final bullet: "a
/// custom dynamic compiler for each dynamic region (also called a
/// generating extension) is built simply by inserting emit code sequences
/// into the set-up code").
///
//===----------------------------------------------------------------------===//

#ifndef DYC_COGEN_COMPILERGENERATOR_H
#define DYC_COGEN_COMPILERGENERATOR_H

#include "bta/OptFlags.h"
#include "cogen/GenExt.h"
#include "cogen/Lowering.h"

namespace dyc {
namespace cogen {

/// Builds the generating extension for annotated function \p F.
/// \p Region is consumed (moved into the result).
GenExtFunction buildGenExt(const ir::Function &F, const ir::Module &M,
                           bta::RegionInfo Region,
                           const LoweredFunction &LF, const OptFlags &Flags);

/// Debug rendering of a generating extension.
std::string printGenExt(const GenExtFunction &GX, const ir::Function &F);

} // namespace cogen
} // namespace dyc

#endif // DYC_COGEN_COMPILERGENERATOR_H
