//===- cogen/EmitPlan.cpp - Staged emit-plan builder -------------------------------===//
//
// Compiles a GenExtFunction into the emit program described in
// EmitPlan.h. The builder is a *plan-time symbolic execution* of the
// specializer's middle and bottom layers: for every EmitInstr it
// re-traces exactly the path DeferralEngine::emitDynamic and
// Emitter::emitResolved would take, with specialize-time values
// abstracted to PlanRefs (plan-time literals, static-register reads,
// derived expressions) and the deferral table tracked symbolically —
// pending entries, copy/constant propagation through reads, dead-
// assignment kills, forced materializations. Every chargeDynComp call
// and every RegionStats bump the legacy engines would make is recorded
// as a per-step count, which is what makes the plan bit-identical to
// the walk by construction.
//
// Where the legacy decision tree forks on a *value* (zero/copy-
// propagation 0/1 tests, power-of-two strength-reduction tests,
// Div/Rem fold-failure tests), the builder compiles BOTH outcomes
// behind a Branch guard and continues symbolically down each arm,
// memoizing the assumption so the same test never re-forks on one
// path. A small per-block guard budget bounds the expansion; a path
// that exhausts it falls back to Generic steps for its remaining ops.
// Before any Generic suffix — and at the end of every fully compiled
// path — a Sync step reconstructs the live deferral table, so the
// legacy interpreter and the driver's terminator handling observe
// exactly the state the walk would have left.
//
//===----------------------------------------------------------------------===//

#include "cogen/EmitPlan.h"

#include "ir/ConstEval.h"
#include "runtime/Emitter.h"

#include <cstdlib>
#include <cstring>
#include <map>

namespace dyc {
namespace cogen {

using ir::Opcode;
namespace v = vm;

namespace {

/// Plan-time image of an RVal: constness, the run-time register (dynamic
/// operands), a still-pending symbolic producer link, and — for constants
/// — the value as a PlanRef.
struct SymVal {
  bool IsConst = false;
  uint32_t R = v::NoReg;
  int32_t Dep = -1;
  PlanRef C;

  static SymVal reg(uint32_t R, int32_t Dep = -1) {
    SymVal V;
    V.R = R;
    V.Dep = Dep;
    return V;
  }
  static SymVal cst(PlanRef C) {
    SymVal V;
    V.IsConst = true;
    V.C = C;
    return V;
  }
};

/// Plan-time image of one DeferredInstr.
struct SymEntry {
  Opcode Op = Opcode::Mov;
  ir::Type Ty = ir::Type::I64;
  uint32_t Dst = v::NoReg;
  SymVal A, B;
  PlanRef Imm;
  bool FromZcp = false;
  bool Pending = true;
};

/// Identity of one value test, for assumption memoization along a path.
/// Literal refs never reach here (they decide immediately).
struct PredKey {
  uint8_t P = 0;
  uint8_t RefK = 0;
  uint32_t RefIdx = 0;
  uint64_t Cmp = 0;

  bool operator<(const PredKey &O) const {
    if (P != O.P)
      return P < O.P;
    if (RefK != O.RefK)
      return RefK < O.RefK;
    if (RefIdx != O.RefIdx)
      return RefIdx < O.RefIdx;
    return Cmp < O.Cmp;
  }
};

/// Thrown when simulation reaches a value test with no recorded
/// assumption: the caller rolls the op back and compiles a guard.
struct NeedGuard {
  PlanBranch::Pred P;
  PlanRef A;
  Word Cmp;
};

/// Builds one BlockPlan by symbolically executing the legacy walk.
class BlockBuilder {
public:
  BlockBuilder(const GenExtFunction &GX, const OptFlags &Flags,
               const GenBlock &GB)
      : GX(GX), Flags(Flags), GB(GB) {}

  BlockPlan build(uint32_t CtxId) {
    buildFrom(0);
    GX.Region.context(CtxId).StaticIn.forEachSetBit(
        [&](size_t Reg) { BP.KeyRegs.push_back(static_cast<uint32_t>(Reg)); });
    return std::move(BP);
  }

private:
  /// Value tests compiled per block before paths stop forking and bail to
  /// Generic. Each guard adds one Branch node (two compiled arms), so the
  /// leaf count — and with it plan size — grows linearly in this budget;
  /// it bounds growth on adversarial inputs while covering every test the
  /// Table 3 kernels' largest unrolled bodies perform.
  static constexpr size_t MaxGuards = 96;

  const GenExtFunction &GX;
  const OptFlags &Flags;
  const GenBlock &GB;
  BlockPlan BP;

  /// Per-path symbolic state (cloned at guards).
  struct Path {
    std::vector<SymEntry> Table;
    std::map<uint32_t, size_t> Latest;
    std::map<PredKey, bool> Assumed;
  };
  Path P;
  PlanStep Open;
  bool HaveOpen = false;

  /// Rollback image for one op's transactional simulation. An op never
  /// pushes steps or evals, so table state, the open step, and the shared
  /// array cursors are the whole footprint. Assumptions are read-only
  /// during simulation.
  struct Snap {
    std::vector<SymEntry> Table;
    std::map<uint32_t, size_t> Latest;
    PlanStep Open;
    bool HaveOpen;
    size_t NTemplate, NHoles, NExprs;
  };

  Snap snapshot() const {
    return {P.Table,          P.Latest,        Open,
            HaveOpen,         BP.Template.size(), BP.Holes.size(),
            BP.Exprs.size()};
  }

  void rollback(Snap &&S) {
    P.Table = std::move(S.Table);
    P.Latest = std::move(S.Latest);
    Open = S.Open;
    HaveOpen = S.HaveOpen;
    BP.Template.resize(S.NTemplate);
    BP.Holes.resize(S.NHoles);
    BP.Exprs.resize(S.NExprs);
  }

  // -- Step management -------------------------------------------------------

  void flush() {
    if (!HaveOpen)
      return;
    HaveOpen = false;
    if (Open.K == PlanStep::EvalRun) {
      Open.Count = static_cast<uint32_t>(BP.Evals.size()) - Open.First;
    } else {
      Open.Count = static_cast<uint32_t>(BP.Template.size()) - Open.First;
      Open.HoleCount = static_cast<uint32_t>(BP.Holes.size()) - Open.HoleFirst;
      Open.ExprCount = static_cast<uint32_t>(BP.Exprs.size()) - Open.ExprFirst;
      // An op that reduced to nothing (a full-circle move) can leave a
      // step with no work and no charges: drop it.
      if (Open.Count == 0 && Open.HoleCount == 0 && Open.ExprCount == 0 &&
          Open.EvalOps == 0 && Open.Emits == 0 && Open.EmitHoles == 0 &&
          Open.ZcpChecks == 0 && Open.SrChecks == 0 && Open.TableOps == 0 &&
          Open.ZcpApplied == 0 && Open.StrengthReduced == 0 &&
          Open.DeadAssigns == 0 && Open.Materialized == 0)
        return;
    }
    BP.Steps.push_back(Open);
  }

  void openEvalRun() {
    if (HaveOpen && Open.K == PlanStep::EvalRun)
      return;
    flush();
    Open = PlanStep{};
    Open.K = PlanStep::EvalRun;
    Open.First = static_cast<uint32_t>(BP.Evals.size());
    HaveOpen = true;
  }

  /// EmitInstr simulation runs with a Copy step open; callers flush any
  /// EvalRun *before* the transactional region so rollback never has to
  /// un-push a step.
  void openCopy() {
    if (HaveOpen)
      return;
    Open = PlanStep{};
    Open.K = PlanStep::Copy;
    Open.First = static_cast<uint32_t>(BP.Template.size());
    Open.HoleFirst = static_cast<uint32_t>(BP.Holes.size());
    Open.ExprFirst = static_cast<uint32_t>(BP.Exprs.size());
    HaveOpen = true;
  }

  void appendGeneric(uint32_t OpIdx) {
    flush();
    PlanStep S;
    S.K = PlanStep::Generic;
    S.First = OpIdx;
    BP.Steps.push_back(S);
  }

  void appendEnd() {
    PlanStep S;
    S.K = PlanStep::End;
    BP.Steps.push_back(S);
  }

  /// Reconstructs the live deferral table from the symbolic one: pending
  /// entries in order, producer links remapped to compacted indices (a
  /// link to an already-dead producer is cleared — forceOperand skips it
  /// either way). Dead entries are dropped entirely: nothing downstream
  /// can observe them.
  void appendSync() {
    std::vector<int32_t> Remap(P.Table.size(), -1);
    uint32_t First = static_cast<uint32_t>(BP.Syncs.size());
    uint32_t Count = 0;
    for (size_t I = 0; I != P.Table.size(); ++I) {
      const SymEntry &E = P.Table[I];
      if (!E.Pending)
        continue;
      Remap[I] = static_cast<int32_t>(Count++);
      PlanSync S;
      S.Op = E.Op;
      S.Ty = E.Ty;
      S.Dst = E.Dst;
      S.A = syncOperand(E.A, Remap);
      S.B = syncOperand(E.B, Remap);
      S.Imm = E.Imm;
      S.FromZcp = E.FromZcp;
      BP.Syncs.push_back(S);
    }
    if (!Count)
      return;
    PlanStep S;
    S.K = PlanStep::Sync;
    S.First = First;
    S.Count = Count;
    BP.Steps.push_back(S);
  }

  static PlanSync::Operand syncOperand(const SymVal &V,
                                       const std::vector<int32_t> &Remap) {
    PlanSync::Operand O;
    O.IsConst = V.IsConst;
    O.R = V.R;
    O.Dep = V.Dep < 0 ? -1 : Remap[static_cast<size_t>(V.Dep)];
    O.C = V.C;
    return O;
  }

  /// Guard budget exhausted (or a deliberately uncompiled op): sync the
  /// table and run every remaining op through the legacy interpreter.
  void bailGeneric(uint32_t OpIdx) {
    flush();
    appendSync();
    for (uint32_t I = OpIdx; I != GB.Ops.size(); ++I) {
      PlanStep S;
      S.K = PlanStep::Generic;
      S.First = I;
      BP.Steps.push_back(S);
    }
    appendEnd();
  }

  // -- Path driver -----------------------------------------------------------

  /// Compiles ops [OpIdx, end) plus the path epilogue (table sync + End)
  /// under the current symbolic state, forking recursively at guards.
  void buildFrom(uint32_t OpIdx) {
    for (uint32_t I = OpIdx; I != GB.Ops.size(); ++I) {
      const SetupOp &Op = GB.Ops[I];
      switch (Op.K) {
      case SetupOp::EvalConst: {
        openEvalRun();
        PlanEval E;
        E.K = PlanEval::Const;
        E.Dst = Op.Dst;
        E.Imm = Op.Imm;
        BP.Evals.push_back(E);
        ++Open.EvalOps;
        continue;
      }
      case SetupOp::Eval: {
        openEvalRun();
        PlanEval E;
        E.K = PlanEval::Pure;
        E.Op = Op.Op;
        E.Dst = Op.Dst;
        E.A = Op.A.R;
        E.B = Op.B.R; // ir::NoReg when unary
        BP.Evals.push_back(E);
        ++Open.EvalOps;
        continue;
      }
      case SetupOp::EvalLoad: {
        openEvalRun();
        PlanEval E;
        E.K = PlanEval::Load;
        E.Dst = Op.Dst;
        E.A = Op.A.R;
        E.Imm = Op.Imm;
        BP.Evals.push_back(E);
        ++Open.StaticLoads;
        continue;
      }
      case SetupOp::EvalCall:
        // Memoized static call: re-enters the VM (and possibly the
        // specializer). It never touches the deferral table, so the
        // symbolic state carries straight across it.
        appendGeneric(I);
        continue;
      case SetupOp::EmitInstr: {
        if (HaveOpen && Open.K == PlanStep::EvalRun)
          flush();
        Snap S = snapshot();
        try {
          simEmit(Op);
        } catch (NeedGuard &G) {
          rollback(std::move(S));
          flush();
          if (BP.Branches.size() >= MaxGuards) {
            bailGeneric(I);
            return;
          }
          uint32_t BI = static_cast<uint32_t>(BP.Branches.size());
          PlanBranch Br;
          Br.P = G.P;
          Br.A = G.A;
          Br.Cmp = G.Cmp;
          BP.Branches.push_back(Br);
          PlanStep BS;
          BS.K = PlanStep::Branch;
          BS.First = BI;
          BP.Steps.push_back(BS);

          PredKey K = predKey(G.P, G.A, G.Cmp);
          Path Saved = P;
          BP.Branches[BI].True = static_cast<uint32_t>(BP.Steps.size());
          P.Assumed[K] = true;
          buildFrom(I);
          P = std::move(Saved);
          BP.Branches[BI].False = static_cast<uint32_t>(BP.Steps.size());
          P.Assumed[K] = false;
          buildFrom(I);
          return;
        }
        continue;
      }
      }
    }
    flush();
    appendSync();
    appendEnd();
  }

  // -- Assumption machinery --------------------------------------------------

  static PredKey predKey(PlanBranch::Pred Pk, const PlanRef &A, Word Cmp) {
    return {static_cast<uint8_t>(Pk), static_cast<uint8_t>(A.K), A.Idx,
            Cmp.Bits};
  }

  /// Resolves one value test: literals decide now; otherwise the path's
  /// recorded assumption applies, or the op aborts to compile a guard.
  bool assume(PlanBranch::Pred Pk, const PlanRef &A, Word Cmp) {
    if (A.K == PlanRef::Lit) {
      if (Pk == PlanBranch::EqBits)
        return A.L.Bits == Cmp.Bits;
      int64_t V = A.L.asInt();
      return isPowerOf2(V) && V >= 2;
    }
    auto It = P.Assumed.find(predKey(Pk, A, Cmp));
    if (It != P.Assumed.end())
      return It->second;
    throw NeedGuard{Pk, A, Cmp};
  }

  // -- Value plumbing --------------------------------------------------------

  uint32_t newExpr(PlanExpr::Kind K, Opcode Op, PlanRef A, PlanRef B) {
    PlanExpr E;
    E.K = K;
    E.Op = Op;
    E.A = A;
    E.B = B;
    BP.Exprs.push_back(E);
    return static_cast<uint32_t>(BP.Exprs.size()) - 1;
  }

  /// op(A, B) as a ref: folded now when both sides are plan literals
  /// (the fold can't fail — Div/Rem-by-zero was guarded by the caller),
  /// else a derived expression captured at the current step.
  PlanRef symEval(Opcode Op, PlanRef A, PlanRef B) {
    if (A.K == PlanRef::Lit && B.K == PlanRef::Lit) {
      Word Out;
      if (ir::evalPureOp(Op, A.L, B.L, Out))
        return PlanRef::lit(Out);
    }
    return PlanRef::expr(newExpr(PlanExpr::Pure, Op, A, B));
  }

  PlanRef log2Ref(PlanRef A) {
    if (A.K == PlanRef::Lit)
      return PlanRef::lit(Word::fromInt(log2OfPow2(A.L.asInt())));
    return PlanRef::expr(newExpr(PlanExpr::Log2, Opcode::Mov, A, PlanRef()));
  }

  /// Refs stored into the symbolic table must survive until sync or a
  /// later materialization, past set-up evaluation that may overwrite
  /// static registers — so raw static reads are captured into the current
  /// step's expression range (evaluated exactly when the legacy walk
  /// would have read them).
  PlanRef stabilize(PlanRef R) {
    if (R.K != PlanRef::Static)
      return R;
    return PlanRef::expr(newExpr(PlanExpr::Pure, Opcode::Mov, R, PlanRef()));
  }

  SymVal stabilizeVal(SymVal V) {
    if (V.IsConst)
      V.C = stabilize(V.C);
    return V;
  }

  // -- Copy-template mirror of the Emitter primitives -----------------------

  void raw(v::Instr I) {
    BP.Template.push_back(I);
    ++Open.Emits;
  }

  /// emitRaw whose Imm field is bits(\p Ref) + \p Add (no hole charge —
  /// the legacy site writes the field directly).
  void rawImm(v::Instr I, PlanRef Ref, int64_t Add) {
    if (Ref.K == PlanRef::Lit) {
      I.Imm = static_cast<int64_t>(Ref.L.Bits) + Add;
      raw(I);
      return;
    }
    PlanHole H;
    H.InstrIdx = static_cast<uint32_t>(BP.Template.size());
    H.Add = Add;
    H.Ref = Ref;
    BP.Holes.push_back(H);
    raw(I);
  }

  /// Emitter::emitConst: one hole charge, then the constant instruction.
  /// ConstI's C.asInt() and ConstF's C.Bits are the same 64-bit image.
  void emitConstSym(uint32_t Dst, PlanRef C, ir::Type Ty) {
    ++Open.EmitHoles;
    rawImm({Ty == ir::Type::F64 ? v::Op::ConstF : v::Op::ConstI, Dst}, C, 0);
  }

  static int64_t litImm(const PlanRef &R) {
    assert(R.K == PlanRef::Lit && "load/store offsets are plan literals");
    return R.L.asInt();
  }

  /// Plan-time mirror of Emitter::emitResolved (operands carrying a
  /// still-pending producer were forced by the caller, as in the legacy
  /// engine).
  void emitResolvedSym(Opcode Op, ir::Type Ty, uint32_t Dst, const SymVal &A,
                       const SymVal &B, PlanRef Imm) {
    switch (Op) {
    case Opcode::ConstI:
    case Opcode::ConstF:
      emitConstSym(Dst, Imm, Ty);
      return;
    case Opcode::Mov:
      if (A.IsConst) {
        emitConstSym(Dst, A.C, Ty);
      } else if (A.R != Dst) {
        raw({Ty == ir::Type::F64 ? v::Op::FMov : v::Op::Mov, Dst, A.R});
      }
      return;
    case Opcode::Neg:
    case Opcode::FNeg:
    case Opcode::IToF:
    case Opcode::FToI:
      if (A.IsConst) {
        // evalPureOp never fails on these unary forms.
        emitConstSym(Dst, symEval(Op, A.C, PlanRef()), Ty);
        return;
      }
      raw({runtime::vmOpOf(Op), Dst, A.R});
      return;
    case Opcode::Load:
      if (A.IsConst) {
        ++Open.EmitHoles;
        rawImm({v::Op::LoadAbs, Dst}, A.C, litImm(Imm));
      } else {
        raw({v::Op::Load, Dst, A.R, 0, litImm(Imm)});
      }
      return;
    case Opcode::Store: {
      // A = address, B = value.
      uint32_t ValReg = B.R;
      if (B.IsConst) {
        emitConstSym(GX.Scratch0, B.C, ir::Type::I64);
        ValReg = GX.Scratch0;
      }
      if (A.IsConst) {
        ++Open.EmitHoles;
        rawImm({v::Op::StoreAbs, ValReg}, A.C, litImm(Imm));
      } else {
        raw({v::Op::Store, ValReg, A.R, 0, litImm(Imm)});
      }
      return;
    }
    default:
      break;
    }

    // Binary arithmetic / comparison.
    if (A.IsConst && B.IsConst) {
      bool Folds = true;
      if (Op == Opcode::Div || Op == Opcode::Rem)
        Folds = !assume(PlanBranch::EqBits, B.C, Word::fromInt(0));
      if (Folds) {
        emitConstSym(Dst, symEval(Op, A.C, B.C), Ty);
        return;
      }
      // Unfoldable (division by zero): emit faithfully so the fault
      // happens at run time, as it would have in static code.
      emitConstSym(GX.Scratch0, A.C, ir::Type::I64);
      emitConstSym(GX.Scratch1, B.C, ir::Type::I64);
      raw({runtime::vmOpOf(Op), Dst, GX.Scratch0, GX.Scratch1});
      return;
    }
    if (!A.IsConst && B.IsConst) {
      v::Op IF = runtime::immFormOf(Op);
      if (IF != v::Op::Halt) {
        ++Open.EmitHoles;
        rawImm({IF, Dst, A.R}, B.C, 0);
        return;
      }
      bool FloatOperand = Op == Opcode::FCmpEq || Op == Opcode::FCmpNe ||
                          Op == Opcode::FCmpLt || Op == Opcode::FCmpLe ||
                          Op == Opcode::FCmpGt || Op == Opcode::FCmpGe;
      emitConstSym(GX.Scratch1, B.C,
                   FloatOperand ? ir::Type::F64 : ir::Type::I64);
      raw({runtime::vmOpOf(Op), Dst, A.R, GX.Scratch1});
      return;
    }
    if (A.IsConst && !B.IsConst) {
      if (runtime::isCommutativeOpcode(Op)) {
        emitResolvedSym(Op, Ty, Dst, B, A, Imm);
        return;
      }
      Opcode Mirrored = runtime::mirrorCompare(Op);
      if (Mirrored != Op) {
        emitResolvedSym(Mirrored, Ty, Dst, B, A, Imm);
        return;
      }
      bool FloatOperand = Op == Opcode::FSub || Op == Opcode::FDiv;
      emitConstSym(GX.Scratch0, A.C,
                   FloatOperand ? ir::Type::F64 : ir::Type::I64);
      raw({runtime::vmOpOf(Op), Dst, GX.Scratch0, B.R});
      return;
    }
    raw({runtime::vmOpOf(Op), Dst, A.R, B.R});
  }

  // -- Symbolic DeferralEngine ----------------------------------------------

  void materialize(size_t Idx) {
    SymEntry &D = P.Table[Idx];
    if (!D.Pending)
      return;
    D.Pending = false;
    auto It = P.Latest.find(D.Dst);
    if (It != P.Latest.end() && It->second == Idx)
      P.Latest.erase(It);
    ++Open.Materialized;
    force(D.A);
    force(D.B);
    emitResolvedSym(D.Op, D.Ty, D.Dst, D.A, D.B, D.Imm);
  }

  void force(const SymVal &A) {
    if (A.Dep >= 0 && P.Table[static_cast<size_t>(A.Dep)].Pending)
      materialize(static_cast<size_t>(A.Dep));
  }

  SymVal readResolve(uint32_t Reg) {
    uint32_t Cur = Reg;
    while (true) {
      auto It = P.Latest.find(Cur);
      if (It == P.Latest.end())
        return SymVal::reg(Cur);
      SymEntry &D = P.Table[It->second];
      ++Open.TableOps; // charge(CM.SpecZcpTableOp)
      if (D.Op == Opcode::Mov) {
        if (D.A.IsConst)
          return D.A;
        Cur = D.A.R;
        continue;
      }
      if (D.Op == Opcode::ConstI || D.Op == Opcode::ConstF)
        return SymVal::cst(D.Imm);
      return SymVal::reg(Cur, static_cast<int32_t>(It->second));
    }
  }

  SymVal resolve(const Operand &O) {
    if (O.R == ir::NoReg)
      return SymVal();
    if (O.Static)
      return SymVal::cst(PlanRef::stat(O.R));
    return readResolve(O.R);
  }

  void writeEvent(uint32_t Dst) {
    if (Dst == v::NoReg)
      return;
    for (size_t I = 0; I != P.Table.size(); ++I) {
      SymEntry &D = P.Table[I];
      if (!D.Pending)
        continue;
      if ((!D.A.IsConst && D.A.R == Dst) || (!D.B.IsConst && D.B.R == Dst))
        materialize(I);
    }
    auto It = P.Latest.find(Dst);
    if (It != P.Latest.end()) {
      SymEntry &D = P.Table[It->second];
      if (D.Pending) {
        D.Pending = false;
        ++Open.DeadAssigns; // ++Stats.DeadAssignsEliminated
        ++Open.TableOps;    // charge(CM.SpecZcpTableOp)
      }
      P.Latest.erase(It);
    }
  }

  void memoryClobber() {
    for (size_t I = 0; I != P.Table.size(); ++I)
      if (P.Table[I].Pending && P.Table[I].Op == Opcode::Load)
        materialize(I);
  }

  void deferOrEmit(const SetupOp &Op, Opcode FormOp, ir::Type Ty, uint32_t Dst,
                   const SymVal &A, const SymVal &B, PlanRef Imm,
                   bool FromZcp) {
    writeEvent(Dst);
    if (Op.Deferrable) {
      ++Open.TableOps; // charge(CM.SpecZcpTableOp)
      SymEntry D;
      D.Op = FormOp;
      D.Ty = Ty;
      D.Dst = Dst;
      D.A = stabilizeVal(A);
      D.B = stabilizeVal(B);
      D.Imm = stabilize(Imm);
      D.FromZcp = FromZcp;
      P.Table.push_back(D);
      P.Latest[Dst] = P.Table.size() - 1;
      return;
    }
    force(A);
    force(B);
    emitResolvedSym(FormOp, Ty, Dst, A, B, Imm);
  }

  /// Plan-time mirror of DeferralEngine::emitDynamic.
  void simEmit(const SetupOp &Op) {
    openCopy();

    if (Op.Op == Opcode::Call || Op.Op == Opcode::CallExt) {
      std::vector<SymVal> Args;
      Args.reserve(Op.Args.size());
      for (const Operand &A : Op.Args)
        Args.push_back(resolve(A));
      memoryClobber();
      writeEvent(Op.Dst);
      for (size_t I = 0; I != Args.size(); ++I) {
        uint32_t Stage = GX.StageBase + static_cast<uint32_t>(I);
        ir::Type ArgTy = GX.RegTypes[Op.Args[I].R];
        force(Args[I]);
        emitResolvedSym(Opcode::Mov, ArgTy, Stage, Args[I], SymVal(),
                        PlanRef());
      }
      raw({Op.Op == Opcode::Call ? v::Op::Call : v::Op::CallExt,
           Op.Dst == ir::NoReg ? v::NoReg : Op.Dst, GX.StageBase,
           static_cast<uint32_t>(Args.size()), Op.Callee});
      return;
    }

    SymVal A = resolve(Op.A);
    SymVal B = resolve(Op.B);

    // A move that resolves to its own destination (copy propagation came
    // full circle) is a no-op: the register already holds the value.
    if (Op.Op == Opcode::Mov && !A.IsConst && A.R == Op.Dst)
      return;

    if (Op.Op == Opcode::Store) {
      memoryClobber();
      force(A);
      force(B);
      emitResolvedSym(Opcode::Store, ir::Type::I64, v::NoReg, A, B,
                      PlanRef::lit(Word::fromInt(Op.Imm)));
      return;
    }

    // Dynamic constant folding: propagation can turn both operands into
    // constants. The fold fails only for integer division by a
    // zero-valued constant — that test guards.
    if (ir::isEvaluableOp(Op.Op) && A.IsConst &&
        (runtime::isUnaryOpcode(Op.Op) || B.IsConst)) {
      bool Folds = true;
      if (Op.Op == Opcode::Div || Op.Op == Opcode::Rem)
        Folds = !assume(PlanBranch::EqBits, B.C, Word::fromInt(0));
      if (Folds) {
        ++Open.EvalOps; // charge(CM.SpecEvalOp)
        deferOrEmit(Op,
                    Op.Ty == ir::Type::F64 ? Opcode::ConstF : Opcode::ConstI,
                    Op.Ty, Op.Dst, SymVal(), SymVal(),
                    symEval(Op.Op, A.C, B.IsConst ? B.C : PlanRef()),
                    /*FromZcp=*/false);
        return;
      }
    }

    // Staged zero/copy propagation (section 2.2.7): a special value of
    // the single constant operand reduces the operation to a move or a
    // clear. The 0/1 tests guard.
    bool OneConst = A.IsConst != B.IsConst;
    if (Flags.ZeroCopyPropagation && OneConst) {
      ++Open.ZcpChecks; // charge(CM.SpecZcpTableOp)
      const SymVal &CS = A.IsConst ? A : B;
      const SymVal &DS = A.IsConst ? B : A;
      bool ConstOnRight = B.IsConst;
      bool IsFloat = Op.Ty == ir::Type::F64;
      Word One = IsFloat ? Word::fromFloat(1.0) : Word::fromInt(1);
      Word Zero = IsFloat ? Word::fromFloat(0.0) : Word::fromInt(0);
      bool RewriteToMove = false, RewriteToClear = false;
      switch (Op.Op) {
      case Opcode::Mul:
      case Opcode::FMul:
        RewriteToMove = assume(PlanBranch::EqBits, CS.C, One);
        RewriteToClear =
            !RewriteToMove && assume(PlanBranch::EqBits, CS.C, Zero);
        break;
      case Opcode::Add:
      case Opcode::FAdd:
        RewriteToMove = assume(PlanBranch::EqBits, CS.C, Zero);
        break;
      case Opcode::Sub:
      case Opcode::FSub:
        RewriteToMove = ConstOnRight && assume(PlanBranch::EqBits, CS.C, Zero);
        break;
      case Opcode::Div:
      case Opcode::FDiv:
        RewriteToMove = ConstOnRight && assume(PlanBranch::EqBits, CS.C, One);
        break;
      default:
        break;
      }
      if (RewriteToMove) {
        ++Open.ZcpApplied;
        deferOrEmit(Op, Opcode::Mov, Op.Ty, Op.Dst, DS, SymVal(), PlanRef(),
                    /*FromZcp=*/true);
        return;
      }
      if (RewriteToClear) {
        ++Open.ZcpApplied;
        deferOrEmit(Op, IsFloat ? Opcode::ConstF : Opcode::ConstI, Op.Ty,
                    Op.Dst, SymVal(), SymVal(), PlanRef::lit(Zero),
                    /*FromZcp=*/true);
        return;
      }
    }

    // Strength reduction (section 2.2.7): integer multiply/divide/
    // remainder by a power of two become shifts and masks. The
    // power-of-two test guards — but only where the legacy path inspects
    // its outcome (Mul either side, Div/Rem with the constant on the
    // right); elsewhere the check is charged and falls through.
    if (Flags.StrengthReduction && OneConst &&
        (Op.Op == Opcode::Mul || Op.Op == Opcode::Div ||
         Op.Op == Opcode::Rem)) {
      ++Open.SrChecks; // charge(CM.SpecStrengthCheck)
      const SymVal &CS = A.IsConst ? A : B;
      const SymVal &DS = A.IsConst ? B : A;
      bool ConstOnRight = B.IsConst;
      bool Relevant = Op.Op == Opcode::Mul || ConstOnRight;
      if (Relevant && assume(PlanBranch::Pow2Ge2, CS.C, Word())) {
        if (Op.Op == Opcode::Mul) {
          ++Open.StrengthReduced;
          deferOrEmit(Op, Opcode::Shl, Op.Ty, Op.Dst, DS,
                      SymVal::cst(log2Ref(CS.C)), PlanRef(), false);
          return;
        }
        // Exact shift sequence (C truncates toward zero, so negative
        // dividends need the bias fixup) — the same code an optimizing
        // static compiler emits for constant power-of-two divisors.
        ++Open.StrengthReduced;
        force(DS);
        writeEvent(Op.Dst);
        PlanRef K = log2Ref(CS.C);
        uint32_t X = DS.R;
        uint32_t S0 = GX.Scratch0;
        raw({v::Op::ShrI, S0, X, 0, 63});
        rawImm({v::Op::AndI, S0, S0}, CS.C, -1); // C - 1
        raw({v::Op::Add, S0, X, S0});
        if (Op.Op == Opcode::Div) {
          rawImm({v::Op::ShrI, Op.Dst, S0}, K, 0);
        } else {
          rawImm({v::Op::ShrI, S0, S0}, K, 0);
          rawImm({v::Op::ShlI, S0, S0}, K, 0);
          raw({v::Op::Sub, Op.Dst, X, S0});
        }
        return;
      }
    }

    deferOrEmit(Op, Op.Op, Op.Ty, Op.Dst, A, B,
                PlanRef::lit(Word::fromInt(Op.Imm)), /*FromZcp=*/false);
  }
};

template <typename T> uint64_t bytesOf(const std::vector<T> &V) {
  return V.size() * sizeof(T);
}

} // namespace

EmitPlan buildEmitPlan(const GenExtFunction &GX, const OptFlags &Flags) {
  EmitPlan P;
  P.FlagsFingerprint = Flags.fingerprint();
  P.Blocks.reserve(GX.Blocks.size());
  for (uint32_t Ctx = 0; Ctx != GX.Blocks.size(); ++Ctx) {
    BlockBuilder B(GX, Flags, GX.Blocks[Ctx]);
    P.Blocks.push_back(B.build(Ctx));
  }
  P.Bytes = sizeof(EmitPlan);
  for (const BlockPlan &BP : P.Blocks)
    P.Bytes += sizeof(BlockPlan) + bytesOf(BP.Steps) + bytesOf(BP.Evals) +
               bytesOf(BP.Template) + bytesOf(BP.Holes) + bytesOf(BP.Exprs) +
               bytesOf(BP.Syncs) + bytesOf(BP.Branches) + bytesOf(BP.KeyRegs);
  return P;
}

bool resolveEmitPlanEnabled(EmitPlanMode Mode) {
  if (Mode == EmitPlanMode::On)
    return true;
  if (Mode == EmitPlanMode::Off)
    return false;
  const char *Env = std::getenv("DYC_EMIT_PLAN");
  if (!Env)
    return true;
  if (!std::strcmp(Env, "off") || !std::strcmp(Env, "0") ||
      !std::strcmp(Env, "false"))
    return false;
  // "on"/"1"/"true" and unrecognized values resolve to the default: on.
  return true;
}

} // namespace cogen
} // namespace dyc
