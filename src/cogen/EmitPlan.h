//===- cogen/EmitPlan.h - Staged emit plans ---------------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Staged emit plans: a one-time, per-region compilation of the
/// generating extension's SetupOp templates into a *linear emit program*
/// the specializer executes instead of re-walking the templates on every
/// specializeInto call (the paper's central staging claim — emitting a
/// specialized instruction should cost tens of cycles, not an
/// interpretive walk).
///
/// A BlockPlan compiles one GenBlock into a step program:
///
///  * EvalRun — a maximal run of static set-up operations (EvalConst /
///    Eval / EvalLoad) pre-decoded into a compact PlanEval array and
///    executed by a tight loop with aggregated cycle charging.
///  * Copy — a maximal run of pre-encoded dynamic template instructions:
///    execution is one bulk append into the chain buffer plus a compact
///    patch-site (hole) list whose entries compute immediate fields from
///    the run's static values (directly or through derived-value
///    expressions).
///  * Branch — a guard on a specialize-time value the legacy decision
///    tree forks on (a zero/copy-propagation 0/1 test, a power-of-two
///    strength-reduction test, a divide-by-zero fold test). The builder
///    compiles *both* outcomes; the guard picks the matching pre-compiled
///    sub-program at run time, so value-dependent rewrites no longer
///    force the interpretive path.
///  * Sync — replays the symbolic deferral-table state the compiled
///    steps imply into the live DeferralEngine, so everything after the
///    compiled portion — Generic suffixes and the driver's terminator
///    handling (return/condition resolution, dropAllPending accounting)
///    — behaves bit-identically to the legacy walk.
///  * Generic — one SetupOp executed through the unmodified legacy path
///    (memoized static calls always; dynamic instructions only past the
///    block's guard budget).
///  * End — terminates the current path of the step program.
///
/// The builder is a plan-time *symbolic execution* of the DeferralEngine:
/// it tracks the deferral table (pending entries, copy/constant
/// propagation, dead-assignment kills, forced materializations) with
/// values abstracted to PlanRefs — plan-time literals, static-register
/// reads, or derived expressions — and mirrors every chargeDynComp call
/// and every RegionStats bump the legacy engine would make, replayed as
/// per-step counts. That is what keeps every simulated counter
/// (DynCompCycles included) and every emitted chain bit-identical plan
/// on/off.
///
/// The plan also carries the flattened static-key register list of every
/// context (the memoization key composition the driver otherwise
/// re-derives through a std::function bit-set walk on every placement
/// and every context edge) — the "memo checks hoisted to run
/// boundaries" piece.
///
/// Plans depend only on the immutable GenExtFunction and the
/// OptFlags::fingerprint() they were built under, so they survive chain
/// eviction and CodeObject::Version churn; RegionExecutionCore builds
/// them lazily on first specialization, caches them per region, and
/// recycles their storage through the region's RecyclingPool.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_COGEN_EMITPLAN_H
#define DYC_COGEN_EMITPLAN_H

#include "bta/OptFlags.h"
#include "cogen/GenExt.h"

namespace dyc {
namespace cogen {

/// A plan-time reference to a specialize-time 64-bit value.
struct PlanRef {
  enum Kind : uint8_t {
    Lit,    ///< a plan-time literal (L)
    Static, ///< Vals[Idx], read when the owning step executes
    Expr,   ///< ExprVals[Idx], computed by an earlier (or the owning) step
  } K = Lit;
  uint32_t Idx = 0;
  Word L;

  static PlanRef lit(Word W) { return {Lit, 0, W}; }
  static PlanRef stat(uint32_t Reg) { return {Static, Reg, Word()}; }
  static PlanRef expr(uint32_t Id) { return {Expr, Id, Word()}; }
};

/// One derived-value computation. Each expression belongs to exactly one
/// Copy step (its capture point) and is evaluated into the run's
/// expression scratch when that step executes — capturing static values
/// *before* later set-up evaluation can overwrite them, exactly when the
/// legacy walk would have read them.
struct PlanExpr {
  enum Kind : uint8_t {
    Pure, ///< evalPureOp(Op, A, B) — guarded against Div/Rem-by-zero
    Log2, ///< log2OfPow2(A.asInt()) — guarded by a Pow2Ge2 branch
  } K = Pure;
  ir::Opcode Op = ir::Opcode::Mov;
  PlanRef A, B;
};

/// One patch site of a Copy template: the Imm field of the instruction at
/// template position \p InstrIdx becomes bits(\p Ref) + \p Add. Every
/// emit-time hole the legacy path fills (demoted-constant
/// materializations, immediate-form packing, absolute-address folding,
/// folded pure ops, strength-reduction shift constants) reduces to this.
struct PlanHole {
  uint32_t InstrIdx = 0;
  int64_t Add = 0;
  PlanRef Ref;
};

/// One guard: picks the sub-program matching the specialize-time value,
/// mirroring a value test of the legacy decision tree.
struct PlanBranch {
  enum Pred : uint8_t {
    EqBits,  ///< bits(A) == bits(Cmp) (ZCP 0/1 tests, div-by-zero folds)
    Pow2Ge2, ///< isPowerOf2(A.asInt()) && A.asInt() >= 2 (SR tests)
  } P = EqBits;
  PlanRef A;
  Word Cmp;
  uint32_t True = 0;  ///< step index if the predicate holds
  uint32_t False = 0; ///< step index otherwise
};

/// One pre-decoded static set-up operation of an EvalRun step.
struct PlanEval {
  enum Kind : uint8_t {
    Const, ///< Vals[Dst] <- Imm
    Pure,  ///< Vals[Dst] <- Op(Vals[A], Vals[B])
    Load,  ///< Vals[Dst] <- Mem[Vals[A] + Imm]
  } K = Const;
  ir::Opcode Op = ir::Opcode::Mov;
  uint32_t Dst = 0;
  uint32_t A = 0;
  uint32_t B = 0; ///< vm::NoReg when the op is unary
  int64_t Imm = 0;
};

/// One reconstructed deferral-table entry of a Sync step: the still-
/// pending entries of the symbolic table, in legacy order, with producer
/// links (Dep) remapped to the compacted indices (links to entries that
/// already died are cleared — forceOperand skips them either way).
struct PlanSync {
  /// A symbolic RVal: a register (possibly linked to an earlier pending
  /// entry) or a constant whose value is resolved at sync time from the
  /// ref (refs stored into the table are always sync-stable: literals or
  /// captured expressions).
  struct Operand {
    bool IsConst = false;
    uint32_t R = vm::NoReg;
    int32_t Dep = -1;
    PlanRef C;
  };
  ir::Opcode Op = ir::Opcode::Mov;
  ir::Type Ty = ir::Type::I64;
  uint32_t Dst = vm::NoReg;
  Operand A, B;
  PlanRef Imm;
  bool FromZcp = false;
};

/// One step of a block's emit program. Execution is PC-driven: most steps
/// fall through to the next index, Branch jumps, End stops.
struct PlanStep {
  enum Kind : uint8_t { EvalRun, Copy, Generic, Branch, Sync, End } K = End;
  /// EvalRun: [First, First+Count) into BlockPlan::Evals.
  /// Copy: [First, First+Count) into BlockPlan::Template.
  /// Generic: First = index into GenBlock::Ops (Count unused).
  /// Branch: First = index into BlockPlan::Branches.
  /// Sync: [First, First+Count) into BlockPlan::Syncs.
  uint32_t First = 0;
  uint32_t Count = 0;
  /// Copy: [HoleFirst, HoleFirst+HoleCount) into BlockPlan::Holes.
  uint32_t HoleFirst = 0;
  uint32_t HoleCount = 0;
  /// Copy: [ExprFirst, ExprFirst+ExprCount) into BlockPlan::Exprs,
  /// evaluated into the expression scratch before the template copy.
  uint32_t ExprFirst = 0;
  uint32_t ExprCount = 0;
  /// Aggregated charge replay, as *counts* (the cost model is per-VM, so
  /// cycles are computed at run time). EvalRun uses EvalOps/StaticLoads;
  /// Copy uses the rest. TableOps replays the deferral engine's
  /// SpecZcpTableOp charges (inserts, resolve hops, dead-kills);
  /// ZcpChecks the zero/copy candidate tests (same rate, kept separate
  /// for readability); SrChecks the strength-reduction tests.
  uint32_t EvalOps = 0;
  uint32_t StaticLoads = 0;
  uint32_t Emits = 0;
  uint32_t EmitHoles = 0;
  uint32_t ZcpChecks = 0;
  uint32_t SrChecks = 0;
  uint32_t TableOps = 0;
  /// Aggregated RegionStats replay for the compiled deferral activity.
  uint32_t ZcpApplied = 0;
  uint32_t StrengthReduced = 0;
  uint32_t DeadAssigns = 0;
  uint32_t Materialized = 0;
};

/// The emit program for one GenBlock (context).
struct BlockPlan {
  std::vector<PlanStep> Steps;
  std::vector<PlanEval> Evals;
  /// Pre-encoded instruction templates for the block's Copy runs, holes
  /// unfilled (their Imm fields are 0 unless the value was a plan-time
  /// literal, which is baked directly).
  std::vector<vm::Instr> Template;
  std::vector<PlanHole> Holes;
  std::vector<PlanExpr> Exprs;
  std::vector<PlanSync> Syncs;
  std::vector<PlanBranch> Branches;
  /// This context's StaticIn registers in ascending (bit-set) order: the
  /// flattened memo-key composition list used for the context's own
  /// placements and for every edge that targets it.
  std::vector<uint32_t> KeyRegs;
};

/// The staged emit plan for one region.
struct EmitPlan {
  /// OptFlags::fingerprint() the plan was built under — a plan is valid
  /// only for flag settings that emit identical code.
  uint64_t FlagsFingerprint = 0;
  std::vector<BlockPlan> Blocks; ///< index == context id
  /// Total plan footprint in bytes (templates, holes, eval streams,
  /// expressions, sync tables, guards, steps, key lists) — the PlanBytes
  /// counter's contribution.
  uint64_t Bytes = 0;
};

/// Compiles \p GX into a staged emit plan under \p Flags. Pure function
/// of its inputs: no VM, no values, no charges — plan building is host
/// work and must not touch simulated counters.
EmitPlan buildEmitPlan(const GenExtFunction &GX, const OptFlags &Flags);

/// Resolves an EmitPlanMode against the DYC_EMIT_PLAN environment
/// variable ("on"/"1"/"true" / "off"/"0"/"false"; unknown values are
/// ignored). Default is on. An explicit flag beats the environment.
bool resolveEmitPlanEnabled(EmitPlanMode Mode);

} // namespace cogen
} // namespace dyc

#endif // DYC_COGEN_EMITPLAN_H
