//===- cogen/Lowering.cpp ---------------------------------------------------------===//

#include "cogen/Lowering.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"

#include <map>

namespace dyc {
namespace cogen {

using namespace ir;
namespace v = vm;

namespace {

/// Direct opcode translations (reg-reg forms).
v::Op vmOpOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::Add;
  case Opcode::Sub: return v::Op::Sub;
  case Opcode::Mul: return v::Op::Mul;
  case Opcode::Div: return v::Op::Div;
  case Opcode::Rem: return v::Op::Rem;
  case Opcode::And: return v::Op::And;
  case Opcode::Or: return v::Op::Or;
  case Opcode::Xor: return v::Op::Xor;
  case Opcode::Shl: return v::Op::Shl;
  case Opcode::Shr: return v::Op::Shr;
  case Opcode::Neg: return v::Op::Neg;
  case Opcode::FAdd: return v::Op::FAdd;
  case Opcode::FSub: return v::Op::FSub;
  case Opcode::FMul: return v::Op::FMul;
  case Opcode::FDiv: return v::Op::FDiv;
  case Opcode::FNeg: return v::Op::FNeg;
  case Opcode::CmpEq: return v::Op::CmpEq;
  case Opcode::CmpNe: return v::Op::CmpNe;
  case Opcode::CmpLt: return v::Op::CmpLt;
  case Opcode::CmpLe: return v::Op::CmpLe;
  case Opcode::CmpGt: return v::Op::CmpGt;
  case Opcode::CmpGe: return v::Op::CmpGe;
  case Opcode::FCmpEq: return v::Op::FCmpEq;
  case Opcode::FCmpNe: return v::Op::FCmpNe;
  case Opcode::FCmpLt: return v::Op::FCmpLt;
  case Opcode::FCmpLe: return v::Op::FCmpLe;
  case Opcode::FCmpGt: return v::Op::FCmpGt;
  case Opcode::FCmpGe: return v::Op::FCmpGe;
  case Opcode::IToF: return v::Op::IToF;
  case Opcode::FToI: return v::Op::FToI;
  default:
    fatal("no direct VM translation for this opcode");
  }
}

/// Reg-immediate form for an integer/compare op with a constant second
/// operand; Op::Halt if none exists.
v::Op immFormOf(Opcode Op) {
  switch (Op) {
  case Opcode::Add: return v::Op::AddI;
  case Opcode::Sub: return v::Op::SubI;
  case Opcode::Mul: return v::Op::MulI;
  case Opcode::Div: return v::Op::DivI;
  case Opcode::Rem: return v::Op::RemI;
  case Opcode::And: return v::Op::AndI;
  case Opcode::Or: return v::Op::OrI;
  case Opcode::Xor: return v::Op::XorI;
  case Opcode::Shl: return v::Op::ShlI;
  case Opcode::Shr: return v::Op::ShrI;
  case Opcode::CmpEq: return v::Op::CmpEqI;
  case Opcode::CmpNe: return v::Op::CmpNeI;
  case Opcode::CmpLt: return v::Op::CmpLtI;
  case Opcode::CmpLe: return v::Op::CmpLeI;
  case Opcode::CmpGt: return v::Op::CmpGtI;
  case Opcode::CmpGe: return v::Op::CmpGeI;
  case Opcode::FAdd: return v::Op::FAddI;
  case Opcode::FSub: return v::Op::FSubI;
  case Opcode::FMul: return v::Op::FMulI;
  case Opcode::FDiv: return v::Op::FDivI;
  default: return v::Op::Halt;
  }
}

bool isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Mul: case Opcode::And: case Opcode::Or:
  case Opcode::Xor: case Opcode::FAdd: case Opcode::FMul:
  case Opcode::CmpEq: case Opcode::CmpNe:
    return true;
  default:
    return false;
  }
}

/// Mirrors an asymmetric comparison so the constant lands on the right:
/// (c < x) == (x > c), etc.
Opcode mirrorCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpLt: return Opcode::CmpGt;
  case Opcode::CmpLe: return Opcode::CmpGe;
  case Opcode::CmpGt: return Opcode::CmpLt;
  case Opcode::CmpGe: return Opcode::CmpLe;
  default: return Op;
  }
}

bool isBinaryArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul: case Opcode::Div:
  case Opcode::Rem: case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::Shr:
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::CmpEq: case Opcode::CmpNe: case Opcode::CmpLt:
  case Opcode::CmpLe: case Opcode::CmpGt: case Opcode::CmpGe:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
    return true;
  default:
    return false;
  }
}

struct FunctionLowering {
  const Function &F;
  const Module &M;
  bool WithRegions;
  const bta::RegionInfo *Region;
  int Ordinal;

  v::CodeObject CO = {};
  std::vector<uint32_t> BlockPC = {};
  struct Patch {
    size_t PC;
    BlockId Target;
    bool FieldC; // patch Instr.C instead of Instr.B
  };
  std::vector<Patch> Patches = {};

  uint32_t StageBase = 0, Scratch0 = 0, Scratch1 = 0;

  void computeLayout() {
    uint32_t MaxArgs = 0;
    for (const BasicBlock &BB : F.Blocks)
      for (const Instruction &I : BB.Instrs)
        if (I.Op == Opcode::Call || I.Op == Opcode::CallExt)
          MaxArgs = std::max(MaxArgs,
                             static_cast<uint32_t>(I.Args.size()));
    StageBase = F.numRegs();
    Scratch0 = StageBase + MaxArgs;
    Scratch1 = Scratch0 + 1;
    CO.NumRegs = Scratch1 + 1;
  }

  void emit(v::Instr I) { CO.Code.push_back(I); }

  /// Emits the exact shift sequence for division/remainder by the
  /// power-of-two \p Imm (C semantics: truncation toward zero, so
  /// negative dividends need the bias fixup):
  ///   bias = (x >> 63) & (Imm - 1);  q = (x + bias) >> log2(Imm)
  ///   r = x - (q << log2(Imm))
  void emitExactDivRem(bool WantRem, uint32_t Dst, uint32_t Src,
                       int64_t Imm) {
    unsigned K = log2OfPow2(Imm);
    emit({v::Op::ShrI, Scratch0, Src, 0, 63});
    emit({v::Op::AndI, Scratch0, Scratch0, 0, Imm - 1});
    emit({v::Op::Add, Scratch0, Src, Scratch0});
    if (!WantRem) {
      emit({v::Op::ShrI, Dst, Scratch0, 0, (int64_t)K});
      return;
    }
    emit({v::Op::ShrI, Scratch0, Scratch0, 0, (int64_t)K});
    emit({v::Op::ShlI, Scratch0, Scratch0, 0, (int64_t)K});
    emit({v::Op::Sub, Dst, Src, Scratch0});
  }

  void run() {
    computeLayout();
    CO.Name = F.Name;

    analysis::CFG G(F);
    analysis::Liveness LV(F, G);

    BlockPC.assign(F.numBlocks(), 0);
    for (BlockId B = 0; B != F.numBlocks(); ++B) {
      BlockPC[B] = static_cast<uint32_t>(CO.Code.size());
      lowerBlock(B, LV);
    }
    for (const Patch &P : Patches) {
      v::Instr &I = CO.Code[P.PC];
      if (P.FieldC)
        I.C = BlockPC[P.Target];
      else
        I.B = BlockPC[P.Target];
    }
  }

  void lowerBlock(BlockId B, const analysis::Liveness &LV) {
    const BasicBlock &BB = F.block(B);

    // Block-local constant map and fold planning.
    struct ConstDef {
      Word Val;
      size_t DefIdx;
      bool IsFloat;
    };
    std::map<Reg, ConstDef> Consts;
    std::vector<uint8_t> FoldSrc1(BB.Instrs.size(), 0);
    std::vector<uint8_t> FoldSrc2(BB.Instrs.size(), 0);
    std::vector<uint8_t> ConstNeeded(BB.Instrs.size(), 0);

    auto MarkUse = [&](Reg R) {
      auto It = Consts.find(R);
      if (It != Consts.end())
        ConstNeeded[It->second.DefIdx] = 1;
    };

    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      const Instruction &I = BB.Instrs[Idx];
      bool FloatOp = I.Op == Opcode::FAdd || I.Op == Opcode::FSub ||
                     I.Op == Opcode::FMul || I.Op == Opcode::FDiv;
      if (isBinaryArith(I.Op) && immFormOf(I.Op) != v::Op::Halt) {
        bool C2 = Consts.count(I.Src2) != 0;
        bool C1 = Consts.count(I.Src1) != 0;
        // Float imm forms carry double bit patterns; int forms int values.
        if (C2) {
          FoldSrc2[Idx] = 1;
        } else if (C1 && (isCommutative(I.Op) ||
                          (!FloatOp && mirrorCompare(I.Op) != I.Op))) {
          FoldSrc1[Idx] = 1;
        }
        if (!FoldSrc1[Idx])
          MarkUse(I.Src1);
        if (!FoldSrc2[Idx])
          MarkUse(I.Src2);
      } else if (I.Op == Opcode::Load && Consts.count(I.Src1)) {
        FoldSrc1[Idx] = 1;
      } else if (I.Op == Opcode::Store && Consts.count(I.Src1)) {
        FoldSrc1[Idx] = 1;
        MarkUse(I.Src2);
      } else if (I.Op == Opcode::Mov && Consts.count(I.Src1)) {
        // Re-materialized as a constant; the source constant is not read.
      } else if (I.Op == Opcode::Call || I.Op == Opcode::CallExt) {
        // Constant arguments are materialized directly into the staging
        // area; the defining constant instruction is not read.
        for (Reg U : I.Args)
          if (!Consts.count(U))
            MarkUse(U);
      } else {
        std::vector<Reg> Uses;
        I.appendUses(Uses);
        for (Reg U : Uses)
          MarkUse(U);
      }
      if (I.definesReg()) {
        Consts.erase(I.Dst);
        if (I.Op == Opcode::ConstI)
          Consts[I.Dst] = {Word::fromInt(I.Imm), Idx, false};
        else if (I.Op == Opcode::ConstF)
          Consts[I.Dst] =
              {Word{static_cast<uint64_t>(I.Imm)}, Idx, true};
      }
    }
    // A constant that is live out of the block must be materialized.
    const BitVector &LiveOut = LV.liveOut(B);
    for (auto &[R, CD] : Consts)
      if (LiveOut.test(R))
        ConstNeeded[CD.DefIdx] = 1;
    // Re-walk to know, at each use point, the folded value (consts map was
    // mutated; rebuild on the emission pass).
    Consts.clear();

    for (size_t Idx = 0; Idx != BB.Instrs.size(); ++Idx) {
      const Instruction &I = BB.Instrs[Idx];
      switch (I.Op) {
      case Opcode::ConstI:
        if (ConstNeeded[Idx])
          emit({v::Op::ConstI, I.Dst, 0, 0, I.Imm});
        Consts.erase(I.Dst);
        Consts[I.Dst] = {Word::fromInt(I.Imm), Idx, false};
        continue;
      case Opcode::ConstF:
        if (ConstNeeded[Idx])
          emit({v::Op::ConstF, I.Dst, 0, 0, I.Imm});
        Consts.erase(I.Dst);
        Consts[I.Dst] = {Word{static_cast<uint64_t>(I.Imm)}, Idx, true};
        continue;
      case Opcode::Mov:
        if (auto It = Consts.find(I.Src1); It != Consts.end()) {
          emit({It->second.IsFloat ? v::Op::ConstF : v::Op::ConstI, I.Dst,
                0, 0, static_cast<int64_t>(It->second.Val.Bits)});
        } else {
          emit({I.Ty == Type::F64 ? v::Op::FMov : v::Op::Mov, I.Dst,
                I.Src1});
        }
        break;
      case Opcode::Neg:
      case Opcode::FNeg:
      case Opcode::IToF:
      case Opcode::FToI:
        emit({vmOpOf(I.Op), I.Dst, I.Src1});
        break;
      case Opcode::Load:
        if (FoldSrc1[Idx])
          emit({v::Op::LoadAbs, I.Dst, 0, 0,
                Consts[I.Src1].Val.asInt() + I.Imm});
        else
          emit({v::Op::Load, I.Dst, I.Src1, 0, I.Imm});
        break;
      case Opcode::Store:
        if (FoldSrc1[Idx])
          emit({v::Op::StoreAbs, I.Src2, 0, 0,
                Consts[I.Src1].Val.asInt() + I.Imm});
        else
          emit({v::Op::Store, I.Src2, I.Src1, 0, I.Imm});
        break;
      case Opcode::Call:
      case Opcode::CallExt: {
        for (size_t A = 0; A != I.Args.size(); ++A) {
          Reg Src = I.Args[A];
          uint32_t Dst = StageBase + static_cast<uint32_t>(A);
          if (auto It = Consts.find(Src); It != Consts.end()) {
            emit({It->second.IsFloat ? v::Op::ConstF : v::Op::ConstI, Dst,
                  0, 0, static_cast<int64_t>(It->second.Val.Bits)});
          } else if (Src != Dst) {
            bool IsF = F.regType(Src) == Type::F64;
            emit({IsF ? v::Op::FMov : v::Op::Mov, Dst, Src});
          }
        }
        emit({I.Op == Opcode::Call ? v::Op::Call : v::Op::CallExt,
              I.Dst == NoReg ? v::NoReg : I.Dst, StageBase,
              static_cast<uint32_t>(I.Args.size()), I.Callee});
        break;
      }
      case Opcode::Br:
        Patches.push_back({CO.Code.size(), I.TrueSucc, false});
        emit({v::Op::Br, 0, 0});
        break;
      case Opcode::CondBr:
        Patches.push_back({CO.Code.size(), I.TrueSucc, false});
        Patches.push_back({CO.Code.size(), I.FalseSucc, true});
        emit({v::Op::CondBr, I.Src1, 0, 0});
        break;
      case Opcode::Ret:
        emit({v::Op::Ret, I.Src1 == NoReg ? v::NoReg : I.Src1});
        break;
      case Opcode::MakeStatic: {
        if (!WithRegions)
          continue; // static compile: annotation ignored
        assert(Region && "annotated function lowered without region info");
        // Find the native-entry promotion for this block.
        int PromoId = -1;
        for (uint32_t PId : Region->NativeEntries)
          if (Region->Promos[PId].Block == B)
            PromoId = static_cast<int>(PId);
        assert(PromoId >= 0 && "make_static block has no native entry");
        int64_t Encoded = (static_cast<int64_t>(Ordinal) << 16) | PromoId;
        emit({v::Op::EnterRegion, 0, 0, 0, Encoded});
        return; // the rest of the block belongs to the region
      }
      case Opcode::MakeDynamic:
        continue;
      default: {
        // Binary arithmetic / comparison.
        assert(isBinaryArith(I.Op) && "unhandled opcode in lowering");
        if (FoldSrc2[Idx]) {
          int64_t Imm = static_cast<int64_t>(Consts[I.Src2].Val.Bits);
          // Strength-reduce constant power-of-two multiply/divide/
          // remainder exactly, as an optimizing static compiler would.
          if (I.Op == Opcode::Mul && isPowerOf2(Imm)) {
            emit({v::Op::ShlI, I.Dst, I.Src1, 0,
                  (int64_t)log2OfPow2(Imm)});
            break;
          }
          if ((I.Op == Opcode::Div || I.Op == Opcode::Rem) &&
              isPowerOf2(Imm) && Imm >= 2) {
            emitExactDivRem(I.Op == Opcode::Rem, I.Dst, I.Src1, Imm);
            break;
          }
          emit({immFormOf(I.Op), I.Dst, I.Src1, 0, Imm});
        } else if (FoldSrc1[Idx]) {
          Opcode Op2 = isCommutative(I.Op) ? I.Op : mirrorCompare(I.Op);
          emit({immFormOf(Op2), I.Dst, I.Src2, 0,
                static_cast<int64_t>(Consts[I.Src1].Val.Bits)});
        } else {
          emit({vmOpOf(I.Op), I.Dst, I.Src1, I.Src2});
        }
        break;
      }
      }
      if (I.definesReg())
        Consts.erase(I.Dst);
    }
  }
};

} // namespace

std::vector<LoweredFunction>
lowerModule(const Module &M, vm::Program &Prog, bool WithRegions,
            const std::vector<bta::RegionInfo> &Regions,
            const std::vector<int> &AnnotatedOrdinal) {
  assert(Regions.size() == M.numFunctions() &&
         AnnotatedOrdinal.size() == M.numFunctions() &&
         "per-function tables must parallel the module");
  std::vector<LoweredFunction> Out;
  for (size_t FI = 0; FI != M.numFunctions(); ++FI) {
    const Function &F = M.function(static_cast<int>(FI));
    FunctionLowering L{F, M, WithRegions,
                       Regions[FI].Contexts.empty() ? nullptr : &Regions[FI],
                       AnnotatedOrdinal[FI]};
    L.run();
    LoweredFunction R;
    R.VMIndex = Prog.addFunction(std::move(L.CO));
    assert(R.VMIndex == FI && "VM function indices must mirror the module");
    R.BlockPC = std::move(L.BlockPC);
    R.StageBase = L.StageBase;
    R.Scratch0 = L.Scratch0;
    R.Scratch1 = L.Scratch1;
    Out.push_back(std::move(R));
  }
  return Out;
}

LoweredFunction lowerFunction(const ir::Function &F, const ir::Module &M,
                              vm::Program &Prog, bool WithRegions,
                              const bta::RegionInfo *Region, int Ordinal,
                              const std::string &CodeName) {
  FunctionLowering L{F, M, WithRegions,
                     Region && !Region->Contexts.empty() ? Region : nullptr,
                     Ordinal};
  L.run();
  if (!CodeName.empty())
    L.CO.Name = CodeName;
  LoweredFunction R;
  R.VMIndex = Prog.addFunction(std::move(L.CO));
  R.BlockPC = std::move(L.BlockPC);
  R.StageBase = L.StageBase;
  R.Scratch0 = L.Scratch0;
  R.Scratch1 = L.Scratch1;
  return R;
}

void bindExternals(const ir::Module &M, vm::Program &Prog) {
  vm::ExternalRegistry Catalog;
  Catalog.addStandardMath();
  for (size_t E = 0; E != M.numExternals(); ++E) {
    const ExternalDecl &D = M.external(static_cast<int>(E));
    int Idx = Catalog.find(D.Name);
    if (Idx < 0)
      fatal("no host implementation for external '" + D.Name + "'");
    const vm::ExternalFunction &Impl =
        Catalog.get(static_cast<unsigned>(Idx));
    if (Impl.NumArgs != D.NumArgs)
      fatal("arity mismatch binding external '" + D.Name + "'");
    unsigned Bound = Prog.Externals.add(Impl);
    assert(Bound == E && "external indices must mirror the module");
    (void)Bound;
  }
}

} // namespace cogen
} // namespace dyc
