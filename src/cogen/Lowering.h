//===- cogen/Lowering.h - IR-to-bytecode lowering -------------------------------===//
//
// Part of the DyC reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers IR functions to VM bytecode. Two modes:
///
///  * static compile (annotations ignored) — the baseline every
///    measurement compares against ("compiled by ignoring the annotations",
///    paper section 3.3), and
///  * dynamic compile — identical, except each make_static block becomes
///    an EnterRegion trap (its Imm encodes annotated-function ordinal and
///    native-entry promotion id).
///
/// Lowering performs the immediate-operand selection a real compiler's
/// code generator would: block-local constants are folded into
/// reg-immediate instruction forms, and constant materializations whose
/// only uses were folded are dropped.
///
//===----------------------------------------------------------------------===//

#ifndef DYC_COGEN_LOWERING_H
#define DYC_COGEN_LOWERING_H

#include "bta/BindingTime.h"
#include "ir/Module.h"
#include "vm/VM.h"

#include <vector>

namespace dyc {
namespace cogen {

/// Per-function results of lowering.
struct LoweredFunction {
  uint32_t VMIndex = 0;
  std::vector<uint32_t> BlockPC; ///< IR block id -> bytecode offset
  uint32_t StageBase = 0;
  uint32_t Scratch0 = 0;
  uint32_t Scratch1 = 0;
};

/// Lowers every function of \p M into \p Prog (in module order, so module
/// function indices equal VM function indices; the same holds for
/// externals, which the caller registers separately).
///
/// \p WithRegions selects the dynamic compile; \p Regions (parallel to the
/// module's functions; entries for unannotated functions have empty
/// Contexts) supplies native-entry promotion ids. \p AnnotatedOrdinal maps
/// function index -> dense ordinal of annotated functions, used in the
/// EnterRegion Imm encoding (ordinal << 16 | promoId).
std::vector<LoweredFunction>
lowerModule(const ir::Module &M, vm::Program &Prog, bool WithRegions,
            const std::vector<bta::RegionInfo> &Regions,
            const std::vector<int> &AnnotatedOrdinal);

/// Lowers one function into \p Prog *without* the module-mirror index
/// invariant — the speculative run-time appends synthesized twins to a
/// program that already holds the whole module. \p Region may be null (or
/// have empty Contexts) for a plain static lowering; \p Ordinal is the
/// region ordinal encoded into EnterRegion traps when \p WithRegions.
/// \p CodeName, if nonempty, overrides the emitted code object's name (the
/// IR function keeps its own name, which region disassembly uses).
LoweredFunction lowerFunction(const ir::Function &F, const ir::Module &M,
                              vm::Program &Prog, bool WithRegions,
                              const bta::RegionInfo *Region, int Ordinal,
                              const std::string &CodeName = "");

/// Registers the module's externals into \p Prog from the standard
/// library, asserting that indices line up.
void bindExternals(const ir::Module &M, vm::Program &Prog);

} // namespace cogen
} // namespace dyc

#endif // DYC_COGEN_LOWERING_H
