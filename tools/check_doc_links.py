#!/usr/bin/env python3
"""Markdown link lint for README.md and docs/.

Checks, using only the standard library:
  - relative links point at files that exist in the repo
  - intra-document anchors (#...) resolve to a heading in the target file

External (http/https/mailto) links are not fetched. Exit status is the
number of broken links (0 = clean), so CI can run it directly.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def doc_files():
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def github_anchor(heading):
    """GitHub's anchor algorithm: lowercase, drop punctuation, spaces->dashes."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        found = set()
        in_fence = False
        with open(path, encoding="utf-8") as f:
            for line in f:
                if CODE_FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                m = HEADING_RE.match(line)
                if m:
                    found.add(github_anchor(m.group(1)))
        cache[path] = found
    return cache[path]


def check_file(path):
    errors = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                base, _, frag = target.partition("#")
                if base:
                    dest = os.path.normpath(
                        os.path.join(os.path.dirname(path), base))
                    if not os.path.exists(dest):
                        errors.append((lineno, target, "missing file"))
                        continue
                else:
                    dest = path
                if frag and dest.endswith(".md"):
                    if frag not in anchors_of(dest):
                        errors.append((lineno, target, "missing anchor"))
    return errors


def main():
    broken = 0
    for path in doc_files():
        for lineno, target, why in check_file(path):
            rel = os.path.relpath(path, REPO)
            print(f"{rel}:{lineno}: broken link '{target}' ({why})")
            broken += 1
    if broken:
        print(f"{broken} broken link(s)")
    else:
        print(f"doc links OK ({len(doc_files())} files)")
    return broken


if __name__ == "__main__":
    sys.exit(main())
