//===- tools/dycc.cpp - Command-line driver for the DyC reproduction ----------------===//
//
// Compile an annotated MiniC file, inspect every stage of the staged
// pipeline, and run it on the simulated machine:
//
//   dycc prog.minic --dump-ir                   # IR after static opts
//   dycc prog.minic --dump-bta                  # binding-time analysis
//   dycc prog.minic --dump-genext               # generating extensions
//   dycc prog.minic --run f 3 4.5 --stats       # dynamic compile + run
//   dycc prog.minic --run f 7 --static          # static baseline
//   dycc prog.minic --run f 7 --dump-residual   # show generated code
//   dycc prog.minic --run f 7 --no-dead-assignment-elim ...
//   dycc prog.minic --run main --profile        # annotation advisor
//
//===----------------------------------------------------------------------===//

#include "bta/BTAnalysis.h"
#include "core/DycContext.h"
#include "profile/ValueProfiler.h"
#include "speculate/SpeculativeRuntime.h"

#include <cstdio>
#include <cstring>
#include <cstdlib>

using namespace dyc;

namespace {

void usage() {
  fprintf(stderr,
          "usage: dycc <file.minic> [options]\n"
          "  --run FUNC [ARGS...]  call FUNC (integer or real arguments)\n"
          "  --iterations N        repeat the call N times (default 1)\n"
          "  --static              run the statically compiled baseline\n"
          "  --dump-ir             print the optimized IR\n"
          "  --dump-bta            print the binding-time analysis\n"
          "  --dump-genext         print the generating extensions\n"
          "  --dump-residual       disassemble generated code after a run\n"
          "  --stats               print cycle counts and region stats\n"
          "  --profile             value-profile the run and suggest\n"
          "                        make_static annotations\n"
          "  --speculate           strip the annotations and run the\n"
          "                        speculative promotion run-time instead\n"
          "  --advise              after a --speculate run, print the\n"
          "                        promotion controller's evidence per\n"
          "                        function (implies --speculate); after a\n"
          "                        --tier run, print per-region tier state\n"
          "  --tier                run through the tiered specialization\n"
          "                        service (cold -> warm -> hot with\n"
          "                        background compilation; also $DYC_TIER)\n"
          "  --tenants N           run through the multi-tenant service: N\n"
          "                        tenants replay the call, chains dedup\n"
          "                        across them (--stats adds per-tenant\n"
          "                        ledgers and the global dedup counters)\n"
          "  --icache KB           L1 I-cache size (default 8)\n"
          "  --backend NAME        execution backend: bytecode | template\n"
          "                        (default: $DYC_BACKEND, else bytecode)\n"
          "  --emit-plan MODE      staged emit plans: on | off (default:\n"
          "                        $DYC_EMIT_PLAN, else on; off = legacy\n"
          "                        template walk — identical output, slower\n"
          "                        host-side specialization)\n");
  for (unsigned T = 0; T != OptFlags::NumToggles; ++T)
    fprintf(stderr, "  --no-%-27s disable this optimization\n",
            OptFlags::toggleName(T));
}

bool looksLikeNumber(const char *S) {
  if (*S == '-' || *S == '+')
    ++S;
  return *S >= '0' && *S <= '9';
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string Path = argv[1];
  std::string RunFunc;
  std::vector<Word> RunArgs;
  uint64_t Iterations = 1;
  bool Static = false, DumpIR = false, DumpBTA = false, DumpGenExt = false,
       DumpResidual = false, Stats = false, Profile = false,
       Speculate = false, Advise = false, Tiered = false;
  unsigned Tenants = 0;
  OptFlags Flags;
  vm::ICacheConfig ICCfg;

  if (const char *TE = getenv("DYC_TIER"))
    Tiered = strcmp(TE, "0") != 0 && strcmp(TE, "off") != 0;

  for (int I = 2; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--run" && I + 1 < argc) {
      RunFunc = argv[++I];
      while (I + 1 < argc && looksLikeNumber(argv[I + 1])) {
        std::string V = argv[++I];
        if (V.find('.') != std::string::npos)
          RunArgs.push_back(Word::fromFloat(strtod(V.c_str(), nullptr)));
        else
          RunArgs.push_back(
              Word::fromInt(strtoll(V.c_str(), nullptr, 10)));
      }
    } else if (A == "--iterations" && I + 1 < argc) {
      Iterations = strtoull(argv[++I], nullptr, 10);
    } else if (A == "--static") {
      Static = true;
    } else if (A == "--dump-ir") {
      DumpIR = true;
    } else if (A == "--dump-bta") {
      DumpBTA = true;
    } else if (A == "--dump-genext") {
      DumpGenExt = true;
    } else if (A == "--dump-residual") {
      DumpResidual = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--profile") {
      Profile = true;
    } else if (A == "--speculate") {
      Speculate = true;
    } else if (A == "--tier") {
      Tiered = true;
    } else if (A == "--tenants" && I + 1 < argc) {
      Tenants = static_cast<unsigned>(strtoul(argv[++I], nullptr, 10));
      if (Tenants == 0) {
        fprintf(stderr, "dycc: --tenants needs a positive count\n");
        return 2;
      }
    } else if (A == "--advise") {
      Advise = true;
    } else if (A == "--icache" && I + 1 < argc) {
      ICCfg.SizeBytes = strtoul(argv[++I], nullptr, 10) * 1024;
    } else if (A == "--backend" || A.rfind("--backend=", 0) == 0) {
      std::string Name;
      if (A == "--backend" && I + 1 < argc)
        Name = argv[++I];
      else if (A.size() > 10)
        Name = A.substr(10);
      if (Name == "bytecode")
        Flags.Backend = ExecBackend::Bytecode;
      else if (Name == "template")
        Flags.Backend = ExecBackend::Template;
      else {
        fprintf(stderr, "dycc: unknown backend '%s' (bytecode | template)\n",
                Name.c_str());
        return 2;
      }
    } else if (A == "--emit-plan" || A.rfind("--emit-plan=", 0) == 0) {
      std::string Mode;
      if (A == "--emit-plan" && I + 1 < argc)
        Mode = argv[++I];
      else if (A.size() > 12)
        Mode = A.substr(12);
      if (Mode == "on")
        Flags.EmitPlan = EmitPlanMode::On;
      else if (Mode == "off")
        Flags.EmitPlan = EmitPlanMode::Off;
      else {
        fprintf(stderr, "dycc: unknown emit-plan mode '%s' (on | off)\n",
                Mode.c_str());
        return 2;
      }
    } else if (A.rfind("--no-", 0) == 0) {
      bool Known = false;
      for (unsigned T = 0; T != OptFlags::NumToggles; ++T)
        if (A.substr(5) == OptFlags::toggleName(T)) {
          Flags.toggle(T) = false;
          Known = true;
        }
      if (!Known) {
        fprintf(stderr, "dycc: unknown optimization '%s'\n", A.c_str());
        return 2;
      }
    } else {
      fprintf(stderr, "dycc: unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    }
  }

  std::string Source;
  {
    FILE *In = Path == "-" ? stdin : std::fopen(Path.c_str(), "rb");
    if (!In) {
      fprintf(stderr, "dycc: cannot open '%s'\n", Path.c_str());
      return 1;
    }
    char Buf[4096];
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), In)) > 0)
      Source.append(Buf, N);
    if (In != stdin)
      std::fclose(In);
  }

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Source, Errors)) {
    for (const std::string &E : Errors)
      fprintf(stderr, "dycc: error: %s\n", E.c_str());
    return 1;
  }

  if (DumpIR)
    printf("%s", ir::printModule(Ctx.module()).c_str());

  if (DumpBTA) {
    std::vector<bta::RegionInfo> Regions = Ctx.analyze(Flags);
    for (const bta::RegionInfo &R : Regions)
      if (!R.Contexts.empty())
        printf("%s",
               bta::printRegionInfo(R, Ctx.module().function(R.FuncIdx))
                   .c_str());
  }

  if (Advise && !Tiered)
    Speculate = true; // the promotion advisor rides the speculative run-time

  if (Tenants) {
    if (Static || Speculate || Tiered || Profile || Advise) {
      fprintf(stderr, "dycc: --tenants is exclusive with "
                      "--static/--speculate/--tier/--profile/--advise\n");
      return 2;
    }
    server::ServerConfig SCfg;
    SCfg.IC = ICCfg;
    std::unique_ptr<server::SpecServer> Server =
        Ctx.buildMultiTenant(Flags, std::move(SCfg));
    std::vector<std::unique_ptr<vm::VM>> Clients;
    for (unsigned T = 1; T <= Tenants; ++T)
      Clients.push_back(Server->makeClientVM(T));
    if (!RunFunc.empty()) {
      int F = Server->findFunction(RunFunc);
      if (F < 0) {
        fprintf(stderr, "dycc: no function named '%s'\n", RunFunc.c_str());
        return 1;
      }
      const ir::Function &Fn = Ctx.module().function(F);
      for (unsigned T = 0; T != Tenants; ++T) {
        Word R;
        for (uint64_t I = 0; I != Iterations; ++I)
          R = Clients[T]->run(static_cast<uint32_t>(F), RunArgs);
        if (Fn.RetTy == ir::Type::F64)
          printf("tenant %u: %s => %.17g\n", T + 1, RunFunc.c_str(),
                 R.asFloat());
        else
          printf("tenant %u: %s => %lld\n", T + 1, RunFunc.c_str(),
                 (long long)R.asInt());
      }
    }
    Server->drain();
    if (Stats) {
      for (unsigned T = 0; T != Tenants; ++T) {
        printf("tenant %u: exec %llu cycles, dyncomp %llu cycles, "
               "icache %llu/%llu\n",
               T + 1, (unsigned long long)Clients[T]->execCycles(),
               (unsigned long long)Clients[T]->dynCompCycles(),
               (unsigned long long)Clients[T]->icache().hits(),
               (unsigned long long)Clients[T]->icache().misses());
        printf("tenant %u ledger: %s\n", T + 1,
               Server->tenantStats(T + 1).toString().c_str());
      }
      printf("execution backend:          %s\n", Server->backendName());
      printf("server: %s\n", Server->stats().toString().c_str());
      for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord)
        printf("region %zu: %s\n", Ord,
               Server->regionStats(Ord).toString().c_str());
    }
    if (DumpResidual)
      for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord)
        printf("%s", Server->disassembleRegion(Ord).c_str());
    return 0;
  }

  if (Tiered) {
    if (Static || Speculate) {
      fprintf(stderr,
              "dycc: --tier is exclusive with --static/--speculate\n");
      return 2;
    }
    if (Profile) {
      fprintf(stderr, "dycc: --profile is not supported with --tier\n");
      return 2;
    }
    server::ServerConfig SCfg;
    SCfg.IC = ICCfg;
    std::unique_ptr<server::SpecServer> Server =
        Ctx.buildTiered(Flags, std::move(SCfg));
    std::unique_ptr<vm::VM> Client = Server->makeClientVM();
    if (!RunFunc.empty()) {
      int F = Server->findFunction(RunFunc);
      if (F < 0) {
        fprintf(stderr, "dycc: no function named '%s'\n", RunFunc.c_str());
        return 1;
      }
      Word R;
      for (uint64_t I = 0; I != Iterations; ++I)
        R = Client->run(static_cast<uint32_t>(F), RunArgs);
      const ir::Function &Fn = Ctx.module().function(F);
      if (Fn.RetTy == ir::Type::F64)
        printf("%s => %.17g\n", RunFunc.c_str(), R.asFloat());
      else
        printf("%s => %lld\n", RunFunc.c_str(), (long long)R.asInt());
    }
    Server->drain();
    if (Stats) {
      printf("execution cycles:           %llu\n",
             (unsigned long long)Client->execCycles());
      printf("dynamic-compilation cycles: %llu\n",
             (unsigned long long)Client->dynCompCycles());
      printf("instructions executed:      %llu\n",
             (unsigned long long)Client->instrsExecuted());
      printf("I-cache: %llu hits, %llu misses\n",
             (unsigned long long)Client->icache().hits(),
             (unsigned long long)Client->icache().misses());
      printf("execution backend:          %s\n", Server->backendName());
      printf("server: %s\n", Server->stats().toString().c_str());
      for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord)
        printf("region %zu: %s\n", Ord,
               Server->regionStats(Ord).toString().c_str());
    }
    if (DumpResidual)
      for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord)
        printf("%s", Server->disassembleRegion(Ord).c_str());
    if (Advise) {
      const tier::TierController *TC = Server->tierController();
      printf("tier advisor (per-region transition evidence):\n");
      for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord) {
        tier::TierCounters T = TC->counters(Ord);
        printf("  region %zu: level %s, cold %llu, warm %llu "
               "(promotions %llu/%llu), installs %llu, osr %llu "
               "(polls %llu)\n",
               Ord, tier::tierLevelName(TC->level(Ord)),
               (unsigned long long)T.ColdExecs,
               (unsigned long long)T.WarmExecs,
               (unsigned long long)T.WarmPromotions,
               (unsigned long long)T.HotPromotions,
               (unsigned long long)T.HotInstalls,
               (unsigned long long)T.OsrEntries,
               (unsigned long long)T.OsrPolls);
      }
      if (Server->numRegions() &&
          Server->regionStats(0).PlanEnabled) {
        printf("emit-plan advisor (per-region plan amortization):\n");
        for (size_t Ord = 0; Ord != Server->numRegions(); ++Ord) {
          runtime::RegionStats RS = Server->regionStats(Ord);
          printf("  region %zu: %llu builds, %llu hits, %llu plan bytes\n",
                 Ord, (unsigned long long)RS.PlanBuilds,
                 (unsigned long long)RS.PlanHits,
                 (unsigned long long)RS.PlanBytes);
        }
      }
    }
    return 0;
  }

  if (Static && Speculate) {
    fprintf(stderr, "dycc: --static and --speculate are exclusive\n");
    return 2;
  }
  std::unique_ptr<core::Executable> E =
      Static ? Ctx.buildStatic(vm::CostModel(), ICCfg)
      : Speculate
          ? Ctx.buildSpeculative(speculate::SpeculationPolicy(), Flags,
                                 vm::CostModel(), ICCfg)
          : Ctx.buildDynamic(Flags, vm::CostModel(), ICCfg);

  if (DumpGenExt && E->RT) {
    for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord)
      printf("%s", E->RT->printRegion(Ord, Ctx.module()).c_str());
  }

  profile::ValueProfiler Prof;
  if (Profile)
    Prof.attach(*E->Machine);

  if (!RunFunc.empty()) {
    int F = E->findFunction(RunFunc);
    if (F < 0) {
      fprintf(stderr, "dycc: no function named '%s'\n", RunFunc.c_str());
      return 1;
    }
    Word R;
    for (uint64_t I = 0; I != Iterations; ++I)
      R = E->Machine->run(static_cast<uint32_t>(F), RunArgs);
    const ir::Function &Fn = Ctx.module().function(F);
    if (Fn.RetTy == ir::Type::F64)
      printf("%s => %.17g\n", RunFunc.c_str(), R.asFloat());
    else
      printf("%s => %lld\n", RunFunc.c_str(), (long long)R.asInt());
  }

  if (Stats) {
    printf("execution cycles:           %llu\n",
           (unsigned long long)E->Machine->execCycles());
    printf("dynamic-compilation cycles: %llu\n",
           (unsigned long long)E->Machine->dynCompCycles());
    printf("instructions executed:      %llu\n",
           (unsigned long long)E->Machine->instrsExecuted());
    printf("I-cache: %llu hits, %llu misses\n",
           (unsigned long long)E->Machine->icache().hits(),
           (unsigned long long)E->Machine->icache().misses());
    if (E->RT || E->Spec)
      printf("execution backend:          %s\n",
             E->RT ? E->RT->backendName()
                   : E->Spec->runtime().backendName());
    if (E->RT)
      for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord)
        printf("region %zu: %s\n", Ord,
               E->RT->stats(Ord).toString().c_str());
    if (E->Spec) {
      const speculate::SpeculationStats &S = E->Spec->stats();
      printf("speculation: %llu calls observed, %llu promoted, "
             "%llu declined, %llu demoted\n",
             (unsigned long long)S.CallsObserved,
             (unsigned long long)S.Promotions,
             (unsigned long long)S.PromotionsDeclined,
             (unsigned long long)S.Demotions);
      printf("guards: %llu checks, %llu hits, %llu failures\n",
             (unsigned long long)S.GuardChecks,
             (unsigned long long)S.GuardHits,
             (unsigned long long)S.GuardFailures);
      runtime::DycRuntime &RT = E->Spec->runtime();
      for (size_t Ord = 0; Ord != RT.numRegions(); ++Ord)
        printf("region %zu: %s\n", Ord, RT.stats(Ord).toString().c_str());
    }
  }

  if (DumpResidual && E->RT)
    for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord)
      printf("%s", E->RT->disassembleRegion(Ord).c_str());
  if (DumpResidual && E->Spec) {
    runtime::DycRuntime &RT = E->Spec->runtime();
    for (size_t Ord = 0; Ord != RT.numRegions(); ++Ord)
      printf("%s", RT.disassembleRegion(Ord).c_str());
  }

  if (Advise) {
    // The promotion controller's evidence, function by function: the
    // online profile (calls, per-parameter dominance) and the trial-BTA
    // structural benefit of promoting every parameter.
    speculate::SpeculativeRuntime &Spec = *E->Spec;
    const profile::ValueProfiler &P = Spec.profiler();
    printf("promotion advisor (speculative run-time evidence; "
           "%s backend):\n",
           Spec.runtime().backendName());
    const ir::Module &M = Spec.specModule();
    for (size_t FI = 0; FI != Ctx.module().numFunctions(); ++FI) {
      const ir::Function &Fn = M.function(static_cast<int>(FI));
      if (Fn.NumParams == 0)
        continue;
      std::vector<uint32_t> All;
      for (uint32_t PI = 0; PI != Fn.NumParams; ++PI)
        All.push_back(PI);
      speculate::PromotionController::Trial T =
          Spec.controller().probe(static_cast<uint32_t>(FI), All);
      printf("  %s: %llu calls, benefit %llu (%llu data folds), "
             "static/dynamic work %llu/%llu%s\n",
             Fn.Name.c_str(),
             (unsigned long long)P.calls(static_cast<uint32_t>(FI)),
             (unsigned long long)T.Benefit,
             (unsigned long long)T.DataFolds,
             (unsigned long long)T.StaticWork,
             (unsigned long long)T.DynWork,
             Spec.ordinalOf(static_cast<uint32_t>(FI)) >= 0
                 ? "  [promoted]"
                 : "");
      for (uint32_t PI = 0; PI != Fn.NumParams; ++PI) {
        const profile::ParamProfile &PP =
            P.param(static_cast<uint32_t>(FI), PI);
        if (PP.Observations == 0 && !PP.Blacklisted)
          continue;
        printf("    %-12s %llu observations, dominance %.2f%s%s\n",
               Fn.regName(PI).c_str(),
               (unsigned long long)PP.Observations, PP.dominance(),
               PP.Overflowed ? ", overflowed" : "",
               PP.Blacklisted ? ", blacklisted" : "");
      }
    }
    runtime::DycRuntime &SRT = Spec.runtime();
    if (SRT.numRegions() && SRT.stats(0).PlanEnabled) {
      printf("emit-plan advisor (per-region plan amortization):\n");
      for (size_t Ord = 0; Ord != SRT.numRegions(); ++Ord) {
        const runtime::RegionStats &RS = SRT.stats(Ord);
        printf("  region %zu: %llu builds, %llu hits, %llu plan bytes\n",
               Ord, (unsigned long long)RS.PlanBuilds,
               (unsigned long long)RS.PlanHits,
               (unsigned long long)RS.PlanBytes);
      }
    }
  }

  if (Profile) {
    std::vector<profile::Suggestion> Sugg = profile::adviseAnnotations(
        Ctx.module(), *E->Machine, Prof);
    if (Sugg.empty()) {
      printf("annotation advisor: no promising make_static candidates\n");
    } else {
      printf("annotation advisor suggestions (best first):\n");
      for (const profile::Suggestion &S : Sugg)
        printf("  %s\n", S.toString().c_str());
    }
  }
  return 0;
}
