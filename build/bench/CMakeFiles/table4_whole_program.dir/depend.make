# Empty dependencies file for table4_whole_program.
# This may be replaced when dependencies are built.
