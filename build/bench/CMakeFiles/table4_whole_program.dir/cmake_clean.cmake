file(REMOVE_RECURSE
  "CMakeFiles/table4_whole_program.dir/Table4WholeProgram.cpp.o"
  "CMakeFiles/table4_whole_program.dir/Table4WholeProgram.cpp.o.d"
  "table4_whole_program"
  "table4_whole_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_whole_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
