file(REMOVE_RECURSE
  "CMakeFiles/dispatch_cost.dir/DispatchCost.cpp.o"
  "CMakeFiles/dispatch_cost.dir/DispatchCost.cpp.o.d"
  "dispatch_cost"
  "dispatch_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
