# Empty compiler generated dependencies file for dispatch_cost.
# This may be replaced when dependencies are built.
