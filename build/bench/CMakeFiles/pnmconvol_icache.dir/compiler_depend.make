# Empty compiler generated dependencies file for pnmconvol_icache.
# This may be replaced when dependencies are built.
