file(REMOVE_RECURSE
  "CMakeFiles/pnmconvol_icache.dir/PnmconvolICache.cpp.o"
  "CMakeFiles/pnmconvol_icache.dir/PnmconvolICache.cpp.o.d"
  "pnmconvol_icache"
  "pnmconvol_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnmconvol_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
