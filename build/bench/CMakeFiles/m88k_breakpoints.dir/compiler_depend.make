# Empty compiler generated dependencies file for m88k_breakpoints.
# This may be replaced when dependencies are built.
