file(REMOVE_RECURSE
  "CMakeFiles/m88k_breakpoints.dir/M88kBreakpoints.cpp.o"
  "CMakeFiles/m88k_breakpoints.dir/M88kBreakpoints.cpp.o.d"
  "m88k_breakpoints"
  "m88k_breakpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m88k_breakpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
