file(REMOVE_RECURSE
  "CMakeFiles/indexed_dispatch.dir/IndexedDispatch.cpp.o"
  "CMakeFiles/indexed_dispatch.dir/IndexedDispatch.cpp.o.d"
  "indexed_dispatch"
  "indexed_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexed_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
