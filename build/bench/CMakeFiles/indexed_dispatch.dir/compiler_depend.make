# Empty compiler generated dependencies file for indexed_dispatch.
# This may be replaced when dependencies are built.
