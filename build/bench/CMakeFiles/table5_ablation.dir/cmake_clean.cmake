file(REMOVE_RECURSE
  "CMakeFiles/table5_ablation.dir/Table5Ablation.cpp.o"
  "CMakeFiles/table5_ablation.dir/Table5Ablation.cpp.o.d"
  "table5_ablation"
  "table5_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
