file(REMOVE_RECURSE
  "CMakeFiles/table3_region_performance.dir/Table3RegionPerformance.cpp.o"
  "CMakeFiles/table3_region_performance.dir/Table3RegionPerformance.cpp.o.d"
  "table3_region_performance"
  "table3_region_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_region_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
