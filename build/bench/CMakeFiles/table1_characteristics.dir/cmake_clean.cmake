file(REMOVE_RECURSE
  "CMakeFiles/table1_characteristics.dir/Table1Characteristics.cpp.o"
  "CMakeFiles/table1_characteristics.dir/Table1Characteristics.cpp.o.d"
  "table1_characteristics"
  "table1_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
