# Empty dependencies file for dotproduct_density.
# This may be replaced when dependencies are built.
