file(REMOVE_RECURSE
  "CMakeFiles/dotproduct_density.dir/DotproductDensity.cpp.o"
  "CMakeFiles/dotproduct_density.dir/DotproductDensity.cpp.o.d"
  "dotproduct_density"
  "dotproduct_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dotproduct_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
