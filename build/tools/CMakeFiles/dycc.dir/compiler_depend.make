# Empty compiler generated dependencies file for dycc.
# This may be replaced when dependencies are built.
