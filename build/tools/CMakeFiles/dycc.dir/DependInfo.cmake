
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/dycc.cpp" "tools/CMakeFiles/dycc.dir/dycc.cpp.o" "gcc" "tools/CMakeFiles/dycc.dir/dycc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_cogen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_bta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
