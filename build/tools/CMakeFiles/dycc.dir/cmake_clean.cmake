file(REMOVE_RECURSE
  "CMakeFiles/dycc.dir/dycc.cpp.o"
  "CMakeFiles/dycc.dir/dycc.cpp.o.d"
  "dycc"
  "dycc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dycc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
