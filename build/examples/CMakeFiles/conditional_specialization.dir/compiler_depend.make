# Empty compiler generated dependencies file for conditional_specialization.
# This may be replaced when dependencies are built.
