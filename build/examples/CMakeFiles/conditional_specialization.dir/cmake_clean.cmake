file(REMOVE_RECURSE
  "CMakeFiles/conditional_specialization.dir/conditional_specialization.cpp.o"
  "CMakeFiles/conditional_specialization.dir/conditional_specialization.cpp.o.d"
  "conditional_specialization"
  "conditional_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
