# Empty dependencies file for interpreter.
# This may be replaced when dependencies are built.
