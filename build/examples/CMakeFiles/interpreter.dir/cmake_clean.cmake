file(REMOVE_RECURSE
  "CMakeFiles/interpreter.dir/interpreter.cpp.o"
  "CMakeFiles/interpreter.dir/interpreter.cpp.o.d"
  "interpreter"
  "interpreter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
