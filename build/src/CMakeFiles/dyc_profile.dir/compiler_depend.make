# Empty compiler generated dependencies file for dyc_profile.
# This may be replaced when dependencies are built.
