file(REMOVE_RECURSE
  "libdyc_profile.a"
)
