file(REMOVE_RECURSE
  "CMakeFiles/dyc_profile.dir/profile/ValueProfiler.cpp.o"
  "CMakeFiles/dyc_profile.dir/profile/ValueProfiler.cpp.o.d"
  "libdyc_profile.a"
  "libdyc_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
