file(REMOVE_RECURSE
  "CMakeFiles/dyc_workloads.dir/workloads/Dinero.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Dinero.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/Kernels.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Kernels.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/M88ksim.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/M88ksim.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/Mipsi.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Mipsi.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/Pnmconvol.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Pnmconvol.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/Viewperf.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Viewperf.cpp.o.d"
  "CMakeFiles/dyc_workloads.dir/workloads/Workload.cpp.o"
  "CMakeFiles/dyc_workloads.dir/workloads/Workload.cpp.o.d"
  "libdyc_workloads.a"
  "libdyc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
