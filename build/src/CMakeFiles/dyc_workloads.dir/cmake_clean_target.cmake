file(REMOVE_RECURSE
  "libdyc_workloads.a"
)
