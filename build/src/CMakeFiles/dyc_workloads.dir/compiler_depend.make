# Empty compiler generated dependencies file for dyc_workloads.
# This may be replaced when dependencies are built.
