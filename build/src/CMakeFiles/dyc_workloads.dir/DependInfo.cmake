
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Dinero.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Dinero.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Dinero.cpp.o.d"
  "/root/repo/src/workloads/Kernels.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Kernels.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Kernels.cpp.o.d"
  "/root/repo/src/workloads/M88ksim.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/M88ksim.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/M88ksim.cpp.o.d"
  "/root/repo/src/workloads/Mipsi.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Mipsi.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Mipsi.cpp.o.d"
  "/root/repo/src/workloads/Pnmconvol.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Pnmconvol.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Pnmconvol.cpp.o.d"
  "/root/repo/src/workloads/Viewperf.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Viewperf.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Viewperf.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/CMakeFiles/dyc_workloads.dir/workloads/Workload.cpp.o" "gcc" "src/CMakeFiles/dyc_workloads.dir/workloads/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_cogen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_bta.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
