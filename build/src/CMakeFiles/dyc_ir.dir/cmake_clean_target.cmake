file(REMOVE_RECURSE
  "libdyc_ir.a"
)
