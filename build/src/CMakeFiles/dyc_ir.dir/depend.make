# Empty dependencies file for dyc_ir.
# This may be replaced when dependencies are built.
