file(REMOVE_RECURSE
  "CMakeFiles/dyc_ir.dir/ir/ConstEval.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/ConstEval.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/Function.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/Function.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/IRBuilder.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/IRBuilder.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/IRPrinter.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/IRPrinter.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/Module.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/Module.cpp.o.d"
  "CMakeFiles/dyc_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/dyc_ir.dir/ir/Verifier.cpp.o.d"
  "libdyc_ir.a"
  "libdyc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
