
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/ConstEval.cpp" "src/CMakeFiles/dyc_ir.dir/ir/ConstEval.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/ConstEval.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/dyc_ir.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/IRBuilder.cpp" "src/CMakeFiles/dyc_ir.dir/ir/IRBuilder.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/IRBuilder.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/CMakeFiles/dyc_ir.dir/ir/IRPrinter.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/dyc_ir.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/dyc_ir.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/dyc_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/dyc_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
