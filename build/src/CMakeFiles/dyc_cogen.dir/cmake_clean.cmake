file(REMOVE_RECURSE
  "CMakeFiles/dyc_cogen.dir/cogen/CompilerGenerator.cpp.o"
  "CMakeFiles/dyc_cogen.dir/cogen/CompilerGenerator.cpp.o.d"
  "CMakeFiles/dyc_cogen.dir/cogen/Lowering.cpp.o"
  "CMakeFiles/dyc_cogen.dir/cogen/Lowering.cpp.o.d"
  "libdyc_cogen.a"
  "libdyc_cogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_cogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
