# Empty dependencies file for dyc_cogen.
# This may be replaced when dependencies are built.
