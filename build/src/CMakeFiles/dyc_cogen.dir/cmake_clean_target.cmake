file(REMOVE_RECURSE
  "libdyc_cogen.a"
)
