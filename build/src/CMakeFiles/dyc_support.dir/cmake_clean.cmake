file(REMOVE_RECURSE
  "CMakeFiles/dyc_support.dir/support/DoubleHashTable.cpp.o"
  "CMakeFiles/dyc_support.dir/support/DoubleHashTable.cpp.o.d"
  "CMakeFiles/dyc_support.dir/support/Support.cpp.o"
  "CMakeFiles/dyc_support.dir/support/Support.cpp.o.d"
  "libdyc_support.a"
  "libdyc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
