# Empty dependencies file for dyc_support.
# This may be replaced when dependencies are built.
