file(REMOVE_RECURSE
  "libdyc_support.a"
)
