file(REMOVE_RECURSE
  "CMakeFiles/dyc_bta.dir/bta/BTAnalysis.cpp.o"
  "CMakeFiles/dyc_bta.dir/bta/BTAnalysis.cpp.o.d"
  "libdyc_bta.a"
  "libdyc_bta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_bta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
