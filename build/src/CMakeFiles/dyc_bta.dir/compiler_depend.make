# Empty compiler generated dependencies file for dyc_bta.
# This may be replaced when dependencies are built.
