file(REMOVE_RECURSE
  "libdyc_bta.a"
)
