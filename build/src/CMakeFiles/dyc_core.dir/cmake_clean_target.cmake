file(REMOVE_RECURSE
  "libdyc_core.a"
)
