file(REMOVE_RECURSE
  "CMakeFiles/dyc_core.dir/core/DycContext.cpp.o"
  "CMakeFiles/dyc_core.dir/core/DycContext.cpp.o.d"
  "CMakeFiles/dyc_core.dir/core/Harness.cpp.o"
  "CMakeFiles/dyc_core.dir/core/Harness.cpp.o.d"
  "libdyc_core.a"
  "libdyc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
