# Empty dependencies file for dyc_core.
# This may be replaced when dependencies are built.
