# Empty compiler generated dependencies file for dyc_runtime.
# This may be replaced when dependencies are built.
