file(REMOVE_RECURSE
  "CMakeFiles/dyc_runtime.dir/runtime/CodeCache.cpp.o"
  "CMakeFiles/dyc_runtime.dir/runtime/CodeCache.cpp.o.d"
  "CMakeFiles/dyc_runtime.dir/runtime/RuntimeStats.cpp.o"
  "CMakeFiles/dyc_runtime.dir/runtime/RuntimeStats.cpp.o.d"
  "CMakeFiles/dyc_runtime.dir/runtime/Specializer.cpp.o"
  "CMakeFiles/dyc_runtime.dir/runtime/Specializer.cpp.o.d"
  "libdyc_runtime.a"
  "libdyc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
