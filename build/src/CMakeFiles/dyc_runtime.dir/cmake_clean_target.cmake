file(REMOVE_RECURSE
  "libdyc_runtime.a"
)
