# Empty dependencies file for dyc_vm.
# This may be replaced when dependencies are built.
