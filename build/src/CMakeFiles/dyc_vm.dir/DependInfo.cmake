
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Bytecode.cpp" "src/CMakeFiles/dyc_vm.dir/vm/Bytecode.cpp.o" "gcc" "src/CMakeFiles/dyc_vm.dir/vm/Bytecode.cpp.o.d"
  "/root/repo/src/vm/CostModel.cpp" "src/CMakeFiles/dyc_vm.dir/vm/CostModel.cpp.o" "gcc" "src/CMakeFiles/dyc_vm.dir/vm/CostModel.cpp.o.d"
  "/root/repo/src/vm/ExternalFunctions.cpp" "src/CMakeFiles/dyc_vm.dir/vm/ExternalFunctions.cpp.o" "gcc" "src/CMakeFiles/dyc_vm.dir/vm/ExternalFunctions.cpp.o.d"
  "/root/repo/src/vm/ICache.cpp" "src/CMakeFiles/dyc_vm.dir/vm/ICache.cpp.o" "gcc" "src/CMakeFiles/dyc_vm.dir/vm/ICache.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "src/CMakeFiles/dyc_vm.dir/vm/VM.cpp.o" "gcc" "src/CMakeFiles/dyc_vm.dir/vm/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
