file(REMOVE_RECURSE
  "CMakeFiles/dyc_vm.dir/vm/Bytecode.cpp.o"
  "CMakeFiles/dyc_vm.dir/vm/Bytecode.cpp.o.d"
  "CMakeFiles/dyc_vm.dir/vm/CostModel.cpp.o"
  "CMakeFiles/dyc_vm.dir/vm/CostModel.cpp.o.d"
  "CMakeFiles/dyc_vm.dir/vm/ExternalFunctions.cpp.o"
  "CMakeFiles/dyc_vm.dir/vm/ExternalFunctions.cpp.o.d"
  "CMakeFiles/dyc_vm.dir/vm/ICache.cpp.o"
  "CMakeFiles/dyc_vm.dir/vm/ICache.cpp.o.d"
  "CMakeFiles/dyc_vm.dir/vm/VM.cpp.o"
  "CMakeFiles/dyc_vm.dir/vm/VM.cpp.o.d"
  "libdyc_vm.a"
  "libdyc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
