file(REMOVE_RECURSE
  "libdyc_vm.a"
)
