# Empty dependencies file for dyc_frontend.
# This may be replaced when dependencies are built.
