file(REMOVE_RECURSE
  "CMakeFiles/dyc_frontend.dir/frontend/Lexer.cpp.o"
  "CMakeFiles/dyc_frontend.dir/frontend/Lexer.cpp.o.d"
  "CMakeFiles/dyc_frontend.dir/frontend/Lower.cpp.o"
  "CMakeFiles/dyc_frontend.dir/frontend/Lower.cpp.o.d"
  "CMakeFiles/dyc_frontend.dir/frontend/Parser.cpp.o"
  "CMakeFiles/dyc_frontend.dir/frontend/Parser.cpp.o.d"
  "libdyc_frontend.a"
  "libdyc_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
