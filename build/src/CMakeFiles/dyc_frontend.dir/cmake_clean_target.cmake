file(REMOVE_RECURSE
  "libdyc_frontend.a"
)
