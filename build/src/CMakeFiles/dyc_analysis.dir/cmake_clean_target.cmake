file(REMOVE_RECURSE
  "libdyc_analysis.a"
)
