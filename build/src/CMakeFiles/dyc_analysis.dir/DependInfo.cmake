
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/CMakeFiles/dyc_analysis.dir/analysis/CFG.cpp.o" "gcc" "src/CMakeFiles/dyc_analysis.dir/analysis/CFG.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/dyc_analysis.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/dyc_analysis.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/dyc_analysis.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/dyc_analysis.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/analysis/LoopInfo.cpp" "src/CMakeFiles/dyc_analysis.dir/analysis/LoopInfo.cpp.o" "gcc" "src/CMakeFiles/dyc_analysis.dir/analysis/LoopInfo.cpp.o.d"
  "/root/repo/src/analysis/ReachingDefs.cpp" "src/CMakeFiles/dyc_analysis.dir/analysis/ReachingDefs.cpp.o" "gcc" "src/CMakeFiles/dyc_analysis.dir/analysis/ReachingDefs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
