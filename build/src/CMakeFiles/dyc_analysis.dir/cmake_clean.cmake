file(REMOVE_RECURSE
  "CMakeFiles/dyc_analysis.dir/analysis/CFG.cpp.o"
  "CMakeFiles/dyc_analysis.dir/analysis/CFG.cpp.o.d"
  "CMakeFiles/dyc_analysis.dir/analysis/Dominators.cpp.o"
  "CMakeFiles/dyc_analysis.dir/analysis/Dominators.cpp.o.d"
  "CMakeFiles/dyc_analysis.dir/analysis/Liveness.cpp.o"
  "CMakeFiles/dyc_analysis.dir/analysis/Liveness.cpp.o.d"
  "CMakeFiles/dyc_analysis.dir/analysis/LoopInfo.cpp.o"
  "CMakeFiles/dyc_analysis.dir/analysis/LoopInfo.cpp.o.d"
  "CMakeFiles/dyc_analysis.dir/analysis/ReachingDefs.cpp.o"
  "CMakeFiles/dyc_analysis.dir/analysis/ReachingDefs.cpp.o.d"
  "libdyc_analysis.a"
  "libdyc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
