# Empty dependencies file for dyc_analysis.
# This may be replaced when dependencies are built.
