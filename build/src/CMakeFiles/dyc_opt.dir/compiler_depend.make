# Empty compiler generated dependencies file for dyc_opt.
# This may be replaced when dependencies are built.
