
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/CoalesceMoves.cpp" "src/CMakeFiles/dyc_opt.dir/opt/CoalesceMoves.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/CoalesceMoves.cpp.o.d"
  "/root/repo/src/opt/ConstantFold.cpp" "src/CMakeFiles/dyc_opt.dir/opt/ConstantFold.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/ConstantFold.cpp.o.d"
  "/root/repo/src/opt/CopyPropagation.cpp" "src/CMakeFiles/dyc_opt.dir/opt/CopyPropagation.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/CopyPropagation.cpp.o.d"
  "/root/repo/src/opt/DeadCodeElim.cpp" "src/CMakeFiles/dyc_opt.dir/opt/DeadCodeElim.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/DeadCodeElim.cpp.o.d"
  "/root/repo/src/opt/PassManager.cpp" "src/CMakeFiles/dyc_opt.dir/opt/PassManager.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/PassManager.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/CMakeFiles/dyc_opt.dir/opt/SimplifyCFG.cpp.o" "gcc" "src/CMakeFiles/dyc_opt.dir/opt/SimplifyCFG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dyc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dyc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
