file(REMOVE_RECURSE
  "CMakeFiles/dyc_opt.dir/opt/CoalesceMoves.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/CoalesceMoves.cpp.o.d"
  "CMakeFiles/dyc_opt.dir/opt/ConstantFold.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/ConstantFold.cpp.o.d"
  "CMakeFiles/dyc_opt.dir/opt/CopyPropagation.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/CopyPropagation.cpp.o.d"
  "CMakeFiles/dyc_opt.dir/opt/DeadCodeElim.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/DeadCodeElim.cpp.o.d"
  "CMakeFiles/dyc_opt.dir/opt/PassManager.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/PassManager.cpp.o.d"
  "CMakeFiles/dyc_opt.dir/opt/SimplifyCFG.cpp.o"
  "CMakeFiles/dyc_opt.dir/opt/SimplifyCFG.cpp.o.d"
  "libdyc_opt.a"
  "libdyc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
