file(REMOVE_RECURSE
  "libdyc_opt.a"
)
