# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/bta_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/cogen_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
