file(REMOVE_RECURSE
  "CMakeFiles/cogen_test.dir/CogenTest.cpp.o"
  "CMakeFiles/cogen_test.dir/CogenTest.cpp.o.d"
  "cogen_test"
  "cogen_test.pdb"
  "cogen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cogen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
