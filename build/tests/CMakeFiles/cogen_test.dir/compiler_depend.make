# Empty compiler generated dependencies file for cogen_test.
# This may be replaced when dependencies are built.
