# Empty dependencies file for bta_test.
# This may be replaced when dependencies are built.
