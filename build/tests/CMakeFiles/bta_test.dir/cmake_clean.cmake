file(REMOVE_RECURSE
  "CMakeFiles/bta_test.dir/BTATest.cpp.o"
  "CMakeFiles/bta_test.dir/BTATest.cpp.o.d"
  "bta_test"
  "bta_test.pdb"
  "bta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
