//===- bench/Table2Optimizations.cpp ---------------------------------------------===//
//
// Regenerates Table 2 of the paper: "Optimizations Used by Each Program".
// Applicability is determined the honest way: from the binding-time
// analysis (divisions, promotions, unrolling classification) plus the
// run-time specializer's counters (which emit-time optimizations actually
// fired on the paper's inputs).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("Table 2: Optimizations Used by Each Program\n");
  printf("(SW/MW = single-/multi-way complete loop unrolling)\n\n");
  printf("%-22s %6s %4s %4s %6s %6s %6s %4s %6s %5s\n", "Dynamic Region",
         "Unroll", "DAE", "ZCP", "SLoad", "UDisp", "SCall", "SR", "IProm",
         "PDiv");
  printf("%s\n", std::string(86, '-').c_str());

  for (const workloads::Workload &W : workloads::allWorkloads()) {
    core::DycContext Ctx;
    core::compileWorkload(W, Ctx);
    std::vector<bta::RegionInfo> Regions = Ctx.analyze(OptFlags());
    const bta::RegionInfo *R = nullptr;
    for (const bta::RegionInfo &Candidate : Regions)
      if (!Candidate.Contexts.empty() &&
          Ctx.module().function(Candidate.FuncIdx).Name == W.RegionFunc)
        R = &Candidate;
    if (!R) {
      printf("%-22s (no region)\n", W.Name.c_str());
      continue;
    }

    bool UsesUnchecked = false;
    for (const bta::PromoPoint &P : R->Promos)
      if (P.Policy == ir::CachePolicy::CacheOneUnchecked)
        UsesUnchecked = true;

    core::RegionPerf Perf = core::measureRegion(W, OptFlags());
    const runtime::RegionStats &St = Perf.Stats;

    auto Mark = [](bool B) { return B ? "x" : "."; };
    printf("%-22s %6s %4s %4s %6s %6s %6s %4s %6s %5s\n", W.Name.c_str(),
           R->UnrollsLoop ? (R->MultiWayUnroll ? "MW" : "SW") : ".",
           Mark(St.DeadAssignsEliminated > 0), Mark(St.ZcpApplied > 0),
           Mark(St.StaticLoadsExecuted > 0), Mark(UsesUnchecked),
           Mark(St.StaticCallsExecuted > 0), Mark(St.StrengthReduced > 0),
           Mark(R->HasInternalPromotions && St.DispatchSitesCreated > 0),
           Mark(R->HasPolyvariantDivision));
  }

  printf("\nPaper's Table 2 for reference (✓ grid): all optimizations are "
         "needed by at least one\napplication; kernels use mostly "
         "unrolling + static loads + unchecked dispatching.\n");
  return 0;
}
