//===- bench/Table1Characteristics.cpp -------------------------------------------===//
//
// Regenerates Table 1 of the paper: "Application Characteristics" — the
// workload description, the annotated static variables and their values,
// program sizes, and the number and size of the dynamically compiled
// functions.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

namespace {

size_t countLines(const std::string &S) {
  size_t N = 0;
  for (char C : S)
    if (C == '\n')
      ++N;
  return N;
}

} // namespace

int main() {
  printf("Table 1: Application Characteristics\n\n");
  printf("%-22s %-38s %-28s %7s | %4s %7s %7s\n", "Program", "Description",
         "Values of Static Variables", "Lines", "#Dyn", "Lines", "Instrs");
  printf("%s\n", std::string(126, '-').c_str());

  bool KernelHeader = false;
  for (const workloads::Workload &W : workloads::allWorkloads()) {
    if (W.IsKernel && !KernelHeader) {
      printf("-- kernels %s\n", std::string(115, '-').c_str());
      KernelHeader = true;
    }
    core::DycContext Ctx;
    core::compileWorkload(W, Ctx);
    std::vector<bta::RegionInfo> Regions = Ctx.analyze(OptFlags());

    unsigned NumDyn = 0;
    size_t DynInstrs = 0;
    for (size_t I = 0; I != Regions.size(); ++I) {
      if (Regions[I].Contexts.empty())
        continue;
      ++NumDyn;
      DynInstrs += Ctx.module().function(static_cast<int>(I))
                       .numInstructions();
    }
    // Lines of the dynamically compiled functions: count the lines of the
    // region function's source block (brace matching from its header).
    size_t DynLines = 0;
    size_t Pos = W.Source.find(W.RegionFunc + "(");
    if (Pos != std::string::npos) {
      size_t Open = W.Source.find('{', Pos);
      int Depth = 0;
      for (size_t I = Open; I < W.Source.size(); ++I) {
        if (W.Source[I] == '{')
          ++Depth;
        if (W.Source[I] == '}' && --Depth == 0)
          break;
        if (W.Source[I] == '\n')
          ++DynLines;
      }
    }

    printf("%-22s %-38s %-28s %7zu | %4u %7zu %7zu\n", W.Name.c_str(),
           W.Description.c_str(), W.StaticVals.c_str(),
           countLines(W.Source), NumDyn, DynLines, DynInstrs);
    printf("%-22s   static vars: %s\n", "", W.StaticVars.c_str());
  }
  printf("\n(Sizes are MiniC reimplementation sizes; the paper's Table 1 "
         "counted the original C sources.)\n");
  return 0;
}
