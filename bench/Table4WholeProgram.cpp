//===- bench/Table4WholeProgram.cpp ----------------------------------------------===//
//
// Regenerates Table 4 of the paper: "Whole-Program Performance with All
// Optimizations" — statically vs dynamically compiled execution time
// (dynamic compilation overhead included), the percentage of static
// execution spent in the dynamic regions, and whole-program speedup, for
// the five applications.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("Table 4: Whole-Program Performance with All Optimizations\n");
  printf("(simulated seconds at %.0f MHz)\n\n", core::ClockHz / 1e6);
  printf("%-14s %12s %12s %14s %10s\n", "Application", "Static (s)",
         "Dynamic (s)", "%% in Regions", "Speedup");
  printf("%s\n", std::string(68, '-').c_str());

  // Table 4 lists the applications once; viewperf's row covers both of
  // its dynamically compiled functions.
  const char *Apps[] = {"dinero", "m88ksim", "mipsi", "pnmconvol",
                        "viewperf:project&clip"};
  for (const char *Name : Apps) {
    const workloads::Workload &W = workloads::workloadByName(Name);
    core::WholeProgramPerf P = core::measureWholeProgram(W, OptFlags());
    const char *Label =
        std::string(Name) == "viewperf:project&clip" ? "viewperf" : Name;
    printf("%-14s %12.6f %12.6f %13.1f%% %10.2f%s\n", Label,
           P.StaticSeconds, P.DynSeconds, P.PctInRegion, P.Speedup,
           P.OutputsMatch ? "" : "  [OUTPUT MISMATCH!]");
  }

  printf("\nPaper's Table 4 for reference:\n");
  printf("  dinero: 49.9%% in region, 1.5x | m88ksim: 9.8%%, 1.05x | "
         "mipsi: ~100%%, 4.6x |\n  pnmconvol: 83.8%%, 3.0x | viewperf: "
         "41.4%%, 1.02x\n");
  return 0;
}
