//===- bench/IndexedDispatch.cpp ---------------------------------------------------===//
//
// Section 3.1 of the paper explains why a decompressor and a grep variant
// were left out of the workload: "to be profitable, some programs need
// techniques or optimizations we have not yet implemented. For example, a
// decompression program and a version of grep could become profitable to
// compile dynamically if DyC supported fast cache lookups over a small
// range of values (e.g., integers between 0 and 255). For such cases, the
// lookup could be implemented as a simple array indexing, in place of
// DyC's current general-purpose hash-table lookup."
//
// This repository implements that extension as the cache_indexed policy.
// The bench runs an RLE-style decoder whose per-byte step is specialized
// on the control byte, under all three dispatch regimes, and shows that
// the paper's prediction holds: hash-dispatched specialization loses to
// static code, array-indexed dispatch wins.
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <cstdio>

using namespace dyc;

namespace {

const char *SourceTemplate = R"(
/* One decoder step, specialized per control byte. table[b*2] selects the
   action (0 = literal, 1 = zero-run), table[b*2+1] its length/value. */
int decode_step(int* table, int byte, int* out, int pos) {
  int i;
  make_static(table, i, byte : POLICY);
  int kind = table@[byte * 2];
  int len = table@[byte * 2 + 1];
  if (kind == 0) {
    out[pos] = len;
    return pos + 1;
  }
  for (i = 0; i < len; i = i + 1) {
    out[pos + i] = 0;
  }
  return pos + len;
}

int decode(int* table, int* bytes, int n, int* out) {
  int i;
  int pos = 0;
  for (i = 0; i < n; i = i + 1) {
    pos = decode_step(table, bytes[i], out, pos);
  }
  return pos;
}
)";

struct Result {
  double CyclesPerByte = 0;
  uint64_t Specializations = 0;
};

Result runConfig(const std::string &Policy, bool Static) {
  std::string Src = SourceTemplate;
  size_t P = Src.find("POLICY");
  Src.replace(P, 6, Policy);

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(Src, Errors))
    fatal("indexed-dispatch bench source failed to compile: " + Errors[0]);
  auto E = Static ? Ctx.buildStatic() : Ctx.buildDynamic();
  vm::VM &M = *E->Machine;

  const int NBytes = 4096, NCodes = 64;
  int64_t Table = M.allocMemory(NCodes * 2);
  int64_t Bytes = M.allocMemory(NBytes);
  int64_t Out = M.allocMemory(NBytes * 8);
  DeterministicRNG RNG(0x1d);
  for (int I = 0; I != NCodes; ++I) {
    M.memory()[Table + I * 2] = Word::fromInt(I % 5 == 0 ? 0 : 1);
    M.memory()[Table + I * 2 + 1] =
        Word::fromInt(2 + static_cast<int64_t>(RNG.nextBelow(11)));
  }
  for (int I = 0; I != NBytes; ++I)
    M.memory()[Bytes + I] =
        Word::fromInt(static_cast<int64_t>(RNG.nextBelow(NCodes)));

  int F = E->findFunction("decode");
  std::vector<Word> Args = {Word::fromInt(Table), Word::fromInt(Bytes),
                            Word::fromInt(NBytes), Word::fromInt(Out)};
  M.run(F, Args); // warm-up / specialization pass
  uint64_t C0 = M.execCycles();
  M.run(F, Args);
  Result R;
  R.CyclesPerByte = static_cast<double>(M.execCycles() - C0) / NBytes;
  if (E->RT)
    R.Specializations = E->RT->stats(0).SpecializationRuns;
  return R;
}

} // namespace

int main() {
  printf("Byte-keyed dispatch study (section 3.1's missing optimization, "
         "implemented)\n\n");
  Result S = runConfig("cache_all", /*Static=*/true);
  Result Hash = runConfig("cache_all", false);
  Result Idx = runConfig("cache_indexed", false);

  printf("%-34s %14s %16s\n", "configuration", "cycles/byte", "vs static");
  printf("%s\n", std::string(66, '-').c_str());
  printf("%-34s %14.1f %16s\n", "statically compiled", S.CyclesPerByte,
         "1.00x");
  printf("%-34s %14.1f %15.2fx%s\n", "dynamic, cache_all (hashed)",
         Hash.CyclesPerByte, S.CyclesPerByte / Hash.CyclesPerByte,
         S.CyclesPerByte / Hash.CyclesPerByte < 1.0 ? "  <- unprofitable"
                                                    : "");
  printf("%-34s %14.1f %15.2fx\n", "dynamic, cache_indexed (array)",
         Idx.CyclesPerByte, S.CyclesPerByte / Idx.CyclesPerByte);
  printf("\n(%llu byte-value specializations in the dynamic "
         "configurations)\n",
         (unsigned long long)Idx.Specializations);
  printf("\nPaper's prediction: with general hashed lookups the per-byte "
         "dispatch cost makes the\nregion unprofitable; with simple array "
         "indexing it becomes profitable.\n");
  return 0;
}
