//===- bench/DispatchThroughput.cpp ------------------------------------------------===//
//
// Host-side dispatch throughput of the run-time's trap handler. For each
// cache policy, compiles a one-region function, then drives
// DycRuntime::dispatch directly (no interpreter in the loop) and measures
// host dispatches per second on three paths:
//
//   hit, inline cache on   — the monomorphic memo short-circuits key
//                            composition, hashing, and probing
//   hit, inline cache off  — the regular key-compose + CodeCache probe
//   miss                   — fresh key every call: probe, specialize,
//                            publish (specialization dominates)
//
// The hit paths must perform ZERO heap allocations per dispatch; this TU
// replaces the global allocation functions with counting versions and the
// timed loops assert on the delta. Simulated counters are out of scope
// here (tests/InterpParityTest.cpp pins them bit-identical IC on/off);
// this binary measures only host speed.
//
// Flags:
//   --quick        shrink the measured dispatch counts (CI smoke)
//   --json FILE    write the measurements as JSON (BENCH_dispatch.json)
//   --check        exit nonzero if cache_all's inline-cached hit path is
//                  slower than 2x its hash-probe path, or if either hit
//                  path allocated
//
//===----------------------------------------------------------------------===//

#include "core/DycContext.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

namespace {
std::atomic<uint64_t> GHeapAllocs{0};
uint64_t heapAllocs() { return GHeapAllocs.load(std::memory_order_relaxed); }
} // namespace

// Counting replacements for the global allocation functions. Deletes are
// deliberately not counted: "zero allocations per hit dispatch" is about
// acquiring memory on the fast path; frees of warm-up garbage are fine.
void *operator new(std::size_t N) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void *operator new(std::size_t N, std::align_val_t A) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  std::size_t Align = static_cast<std::size_t>(A);
  if (Align < sizeof(void *))
    Align = sizeof(void *);
  void *P = nullptr;
  if (posix_memalign(&P, Align, N ? N : 1) != 0)
    throw std::bad_alloc();
  return P;
}
void *operator new[](std::size_t N, std::align_val_t A) {
  return ::operator new(N, A);
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}

using namespace dyc;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PathRun {
  uint64_t Dispatches = 0;
  double Seconds = 0;
  uint64_t Allocs = 0; ///< heap allocations during the timed segment
  double PerSec() const { return Seconds > 0 ? Dispatches / Seconds : 0; }
  double NsPer() const {
    return Dispatches ? Seconds * 1e9 / Dispatches : 0;
  }
};

/// One compiled region per policy, plus a register file sized for its
/// promotion point so dispatch can be called without an interpreter frame.
struct Built {
  std::unique_ptr<core::DycContext> Ctx; // must outlive E (module refs)
  std::unique_ptr<core::Executable> E;
  int64_t PointId = 0;
  std::vector<ir::Reg> KeyRegs;
  std::vector<Word> Regs;

  void setKey(uint64_t K) {
    for (ir::Reg R : KeyRegs)
      Regs[R] = Word{K};
  }
  vm::RuntimeHook::Target dispatch() {
    return E->RT->dispatch(*E->Machine, PointId, Regs);
  }
};

/// The region body is constant-cost on purpose: the static variable does
/// not drive unrolling, so miss-path specialization time is independent of
/// the key value and the miss loop can walk fresh keys freely.
Built buildFor(const std::string &Policy) {
  Built B;
  B.Ctx = std::make_unique<core::DycContext>();
  std::string Src = "int f(int n) {\n"
                    "  make_static(n : " +
                    Policy +
                    ");\n"
                    "  return n * 3 + 7;\n"
                    "}";
  std::vector<std::string> Errors;
  if (!B.Ctx->compile(Src, Errors))
    fatal("dispatch bench: compile failed: " +
          (Errors.empty() ? Policy : Errors[0]));
  B.E = B.Ctx->buildDynamic();
  int Ord = B.E->regionOrdinalOf("f");
  if (Ord < 0)
    fatal("dispatch bench: region not annotated");
  B.PointId = static_cast<int64_t>(Ord) << 16; // native entry, promo 0
  const bta::PromoPoint &P =
      B.E->RT->core().promo(static_cast<size_t>(Ord), 0);
  B.KeyRegs = P.KeyRegs;
  ir::Reg MaxReg = 0;
  for (ir::Reg R : B.KeyRegs)
    MaxReg = std::max(MaxReg, R);
  B.Regs.assign(MaxReg + 1, Word{0});
  return B;
}

/// Times \p N monomorphic dispatches on an already-published key. Two
/// warm-up dispatches first: the first may miss and specialize, the second
/// reaches steady state (retained key scratch sized, inline cache
/// memoized). Intentionally never releases executors — ActiveRefs just
/// grows, which is harmless and keeps the loop pure dispatch.
PathRun timeHits(Built &B, bool ICOn, uint64_t N) {
  B.E->RT->setInlineCacheEnabled(ICOn);
  B.setKey(5);
  B.dispatch();
  B.dispatch();
  PathRun R;
  R.Dispatches = N;
  uint64_t A0 = heapAllocs();
  double T0 = nowSeconds();
  for (uint64_t I = 0; I != N; ++I)
    B.dispatch();
  R.Seconds = nowSeconds() - T0;
  R.Allocs = heapAllocs() - A0;
  return R;
}

/// Times \p N dispatches on never-seen keys: every one misses, specializes,
/// and publishes (except under cache_one_unchecked, where any resident
/// entry serves any key — there this measures the policy's actual behavior
/// on fresh keys, which is a hit). Keys stay below the cache_indexed
/// direct-array range so that policy is measured on its primary plane.
PathRun timeMisses(Built &B, uint64_t N, uint64_t FirstKey) {
  B.E->RT->setInlineCacheEnabled(true);
  PathRun R;
  R.Dispatches = N;
  uint64_t A0 = heapAllocs();
  double T0 = nowSeconds();
  for (uint64_t I = 0; I != N; ++I) {
    B.setKey(FirstKey + I);
    B.dispatch();
  }
  R.Seconds = nowSeconds() - T0;
  R.Allocs = heapAllocs() - A0;
  return R;
}

struct Row {
  std::string Policy;
  PathRun HitICOn, HitICOff, Miss;
  uint64_t ICHits = 0;
  double ICSpeedup() const {
    return HitICOff.PerSec() > 0 ? HitICOn.PerSec() / HitICOff.PerSec() : 0;
  }
};

void writeJson(const char *Path, const std::vector<Row> &Rows, bool Check,
               bool CheckPassed) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return;
  }
  auto PathJson = [&](const char *Name, const PathRun &R, const char *Tail) {
    std::fprintf(F,
                 "     \"%s\": {\"dispatches\": %llu, "
                 "\"dispatches_per_sec\": %.0f, \"ns_per_dispatch\": %.2f, "
                 "\"heap_allocs\": %llu}%s\n",
                 Name, (unsigned long long)R.Dispatches, R.PerSec(),
                 R.NsPer(), (unsigned long long)R.Allocs, Tail);
  };
  std::fprintf(F, "{\n  \"bench\": \"dispatch_throughput\",\n");
  std::fprintf(F, "  \"dispatch\": \"%s\",\n", vm::VM::dispatchMode());
  std::fprintf(F, "  \"policies\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(F, "    {\"name\": \"%s\",\n", R.Policy.c_str());
    PathJson("hit_ic_on", R.HitICOn, ",");
    PathJson("hit_ic_off", R.HitICOff, ",");
    PathJson("miss", R.Miss, ",");
    std::fprintf(F, "     \"inline_cache_hits\": %llu,\n",
                 (unsigned long long)R.ICHits);
    std::fprintf(F, "     \"ic_speedup\": %.3f}%s\n", R.ICSpeedup(),
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"check\": %s,\n  \"check_passed\": %s\n}\n",
               Check ? "true" : "false", CheckPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = hasFlag(Argc, Argv, "--quick") ||
               [] {
                 const char *E = std::getenv("DYC_BENCH_QUICK");
                 return E && E[0] == '1';
               }();
  bool Check = hasFlag(Argc, Argv, "--check");
  const char *Json = jsonPath(Argc, Argv);

  uint64_t HitN = Quick ? 200000 : 2000000;
  uint64_t MissN = Quick ? 500 : 5000;

  const char *Policies[] = {"cache_all", "cache_one", "cache_one_unchecked",
                            "cache_indexed"};

  std::printf("Dispatch throughput (host dispatches/sec; dispatch: %s)\n",
              vm::VM::dispatchMode());
  std::printf("%-20s %14s %14s %12s %8s %7s %7s\n", "policy", "hit IC on",
              "hit IC off", "miss", "IC gain", "alloc+", "alloc-");

  std::vector<Row> Rows;
  bool CheckPassed = true;
  for (const char *Policy : Policies) {
    Built B = buildFor(Policy);
    Row R;
    R.Policy = Policy;
    R.HitICOn = timeHits(B, true, HitN);
    R.HitICOff = timeHits(B, false, HitN);
    R.Miss = timeMisses(B, MissN, /*FirstKey=*/100);
    R.ICHits = B.E->RT->inlineCacheHits();

    // The monomorphic hit path must never touch the heap, with the inline
    // cache on or off (retained-capacity scratch, no rehash on lookup).
    if (R.HitICOn.Allocs != 0 || R.HitICOff.Allocs != 0)
      CheckPassed = false;
    // The gate from the issue: inline-cached hits at >= 2x the hash-probe
    // path, asserted where the probe is most expensive (cache_all).
    if (std::strcmp(Policy, "cache_all") == 0 && R.ICSpeedup() < 2.0)
      CheckPassed = false;

    std::printf("%-20s %14.0f %14.0f %12.0f %7.2fx %7llu %7llu\n", Policy,
                R.HitICOn.PerSec(), R.HitICOff.PerSec(), R.Miss.PerSec(),
                R.ICSpeedup(), (unsigned long long)R.HitICOn.Allocs,
                (unsigned long long)R.HitICOff.Allocs);
    Rows.push_back(std::move(R));
  }

  if (Json)
    writeJson(Json, Rows, Check, CheckPassed);

  if (Check && !CheckPassed) {
    std::fprintf(stderr,
                 "FAIL: hit-path allocation or cache_all inline-cache "
                 "speedup below 2x\n");
    return 1;
  }
  return 0;
}
