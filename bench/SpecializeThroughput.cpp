//===- bench/SpecializeThroughput.cpp ----------------------------------------------===//
//
// Host cost of the specializer itself: nanoseconds of wall-clock per
// EMITTED instruction, staged emit plans on versus off, across the five
// Table 3 kernels. The plan path is contractually invisible to the
// simulated machine, so this benchmark is the tentpole's scoreboard — the
// only thing it is allowed to change.
//
// Method, per kernel and per plan mode:
//   1. build the dynamic configuration and warm it with one invocation
//      (first specialization; the plan is built here when the path is on);
//   2. drive a respecialization loop (releaseRegion + run, so every
//      iteration reruns the generating extension against a cached plan)
//      and read the runtime's specializeHostSeconds() accumulator — host
//      wall-clock measured around specializeInto itself, so workload
//      execution and chain teardown never dilute the metric;
//   3. repeat the loop a few times — INTERLEAVED between the two modes,
//      so a machine-load phase hits both — and keep each mode's minimum
//      accumulated time (the repetition least disturbed by scheduler
//      noise), divided by the instructions generated in one repetition.
//
// Both modes execute the identical simulated sequence; --check fails on
// any counter or disassembly divergence, and gates the plan speedup at
// >= 2x on at least 3 of the 5 kernels.
//
// Flags:
//   --quick        shrink the measured loop counts (CI smoke)
//   --json FILE    write the measurements as JSON (BENCH_specialize.json)
//   --check        exit nonzero on parity divergence or a missed gate
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

struct ModeRun {
  uint64_t SpecRuns = 0;        ///< respecialization iterations per rep
  uint64_t InstrsGenerated = 0; ///< emitted instructions in one rep
  double SpecSeconds = 0;       ///< min-over-reps specializer host time
  // Parity axis: the complete simulated state after the identical
  // sequence, plus the golden disassembly.
  uint64_t ExecCycles = 0;
  uint64_t DynCompCycles = 0;
  uint64_t InstrsExecuted = 0;
  uint64_t ICacheMisses = 0;
  std::string RegionStats; ///< all regions, plan block neutralized
  std::string Disassembly; ///< all regions
  uint64_t PlanBuilds = 0;
  uint64_t PlanHits = 0;

  double NsPerEmittedInstr() const {
    return InstrsGenerated
               ? std::max(SpecSeconds, 0.0) * 1e9 /
                     static_cast<double>(InstrsGenerated)
               : 0;
  }
};

std::string statsSansPlan(runtime::RegionStats St) {
  St.PlanEnabled = false;
  St.PlanBuilds = St.PlanHits = St.PlanBytes = 0;
  return St.toString();
}

/// One plan mode's live configuration, kept alive across repetitions so
/// the two modes' measured loops can interleave in time.
struct ModeDriver {
  core::DycContext Ctx;
  std::unique_ptr<core::Executable> E;
  WorkloadSetup S;
  int FI = -1;
  ModeRun R;

  void init(const Workload &W, bool PlanOn, uint64_t SpecRuns) {
    core::compileWorkload(W, Ctx);
    OptFlags Fl;
    Fl.EmitPlan = PlanOn ? EmitPlanMode::On : EmitPlanMode::Off;
    E = Ctx.buildDynamic(Fl);
    // Legacy engine: no host-side predecode translation per fresh chain
    // muddying cache behavior around the measured specializer.
    E->Machine->Engine = vm::VM::EngineKind::Legacy;
    S = W.Setup(*E->Machine);
    FI = E->findFunction(W.RegionFunc);
    if (FI < 0)
      fatal(W.Name + ": region function not found");
    R.SpecRuns = SpecRuns;
    E->Machine->run(static_cast<uint32_t>(FI),
                    S.RegionArgs); // warmup: specializes
  }

  uint64_t sumGenerated() const {
    uint64_t G = 0;
    for (size_t Ord = 0; Ord != E->RT->numRegions(); ++Ord)
      G += E->RT->stats(Ord).InstructionsGenerated;
    return G;
  }

  /// One respecialization repetition: dropping every chain forces the
  /// next run to rerun the generating extension — against the cached plan
  /// when on. The specializer's own host time comes from the runtime's
  /// accumulator, so chain teardown and workload execution never enter
  /// the metric; the min over repetitions discards disturbed runs.
  void rep(unsigned RepIdx, uint64_t SpecRuns) {
    vm::VM &M = *E->Machine;
    runtime::DycRuntime &RT = *E->RT;
    uint64_t G0 = sumGenerated();
    double S0 = RT.specializeHostSeconds();
    for (uint64_t I = 0; I != SpecRuns; ++I) {
      for (size_t Ord = 0; Ord != RT.numRegions(); ++Ord)
        RT.releaseRegion(M, Ord);
      M.run(static_cast<uint32_t>(FI), S.RegionArgs);
    }
    double Secs = RT.specializeHostSeconds() - S0;
    R.InstrsGenerated = sumGenerated() - G0; // identical every rep
    R.SpecSeconds = RepIdx == 0 ? Secs : std::min(R.SpecSeconds, Secs);
  }

  void finish() {
    vm::VM &M = *E->Machine;
    runtime::DycRuntime &RT = *E->RT;
    R.ExecCycles = M.execCycles();
    R.DynCompCycles = M.dynCompCycles();
    R.InstrsExecuted = M.instrsExecuted();
    R.ICacheMisses = M.icache().misses();
    for (size_t Ord = 0; Ord != RT.numRegions(); ++Ord) {
      const runtime::RegionStats &St = RT.stats(Ord);
      R.RegionStats += statsSansPlan(St) + "\n";
      R.Disassembly += RT.disassembleRegion(Ord);
      R.PlanBuilds += St.PlanBuilds;
      R.PlanHits += St.PlanHits;
    }
  }
};

struct Row {
  std::string Name;
  ModeRun On, Off;
  double Speedup = 0; ///< legacy ns/instr over plan ns/instr
  bool Parity = false;
};

void writeJson(const char *Path, const std::vector<Row> &Rows,
               unsigned GatePassCount, bool Check, bool CheckPassed) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"specialize_throughput\",\n");
  std::fprintf(F, "  \"dispatch\": \"%s\",\n", vm::VM::dispatchMode());
  std::fprintf(F, "  \"kernels\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(
        F,
        "    {\"name\": \"%s\", \"spec_runs\": %llu,\n"
        "     \"instrs_generated\": %llu,\n"
        "     \"parity\": %s,\n"
        "     \"plan_on\": {\"ns_per_emitted_instr\": %.3f, "
        "\"plan_builds\": %llu, \"plan_hits\": %llu},\n"
        "     \"plan_off\": {\"ns_per_emitted_instr\": %.3f},\n"
        "     \"speedup\": %.3f}%s\n",
        R.Name.c_str(), (unsigned long long)R.On.SpecRuns,
        (unsigned long long)R.On.InstrsGenerated,
        R.Parity ? "true" : "false", R.On.NsPerEmittedInstr(),
        (unsigned long long)R.On.PlanBuilds,
        (unsigned long long)R.On.PlanHits, R.Off.NsPerEmittedInstr(),
        R.Speedup, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(F,
               "  \"gate\": {\"min_speedup\": 2.0, \"min_kernels\": 3, "
               "\"kernels_passing\": %u},\n",
               GatePassCount);
  std::fprintf(F, "  \"check\": %s,\n  \"check_passed\": %s\n}\n",
               Check ? "true" : "false", CheckPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = hasFlag(Argc, Argv, "--quick") ||
               [] {
                 const char *E = std::getenv("DYC_BENCH_QUICK");
                 return E && E[0] == '1';
               }();
  bool Check = hasFlag(Argc, Argv, "--check");
  const char *Json = jsonPath(Argc, Argv);

  const std::vector<std::string> Names = {"binary", "chebyshev",
                                          "dotproduct", "query", "romberg"};
  // Many short repetitions rather than a few long ones: the min filter
  // only needs ONE repetition per mode to land in a quiet scheduling
  // window, and short reps give it many independent chances.
  const uint64_t SpecRuns = Quick ? 50 : 100;
  const unsigned Reps = Quick ? 8 : 12;

  std::printf("specialization throughput, staged emit plans on vs off "
              "(dispatch: %s)\n",
              vm::VM::dispatchMode());
  std::printf("%-12s %9s %11s %13s %13s %8s %7s\n", "kernel", "respecs",
              "emitted", "plan ns/i", "legacy ns/i", "speedup", "parity");

  std::vector<Row> Rows;
  bool ParityOk = true;
  unsigned GatePass = 0;
  for (const std::string &Name : Names) {
    const Workload &W = workloads::workloadByName(Name);
    Row R;
    R.Name = Name;
    ModeDriver On, Off;
    On.init(W, true, SpecRuns);
    Off.init(W, false, SpecRuns);
    for (unsigned Rep = 0; Rep != Reps; ++Rep) {
      On.rep(Rep, SpecRuns);
      Off.rep(Rep, SpecRuns);
    }
    On.finish();
    Off.finish();
    R.On = std::move(On.R);
    R.Off = std::move(Off.R);
    R.Parity = R.On.ExecCycles == R.Off.ExecCycles &&
               R.On.DynCompCycles == R.Off.DynCompCycles &&
               R.On.InstrsExecuted == R.Off.InstrsExecuted &&
               R.On.ICacheMisses == R.Off.ICacheMisses &&
               R.On.InstrsGenerated == R.Off.InstrsGenerated &&
               R.On.RegionStats == R.Off.RegionStats &&
               R.On.Disassembly == R.Off.Disassembly &&
               R.On.PlanBuilds > 0 && R.Off.PlanBuilds == 0;
    if (!R.Parity)
      ParityOk = false;
    double PlanNs = R.On.NsPerEmittedInstr();
    double LegacyNs = R.Off.NsPerEmittedInstr();
    R.Speedup = PlanNs > 0 ? LegacyNs / PlanNs : 0;
    if (R.Speedup >= 2.0)
      ++GatePass;
    std::printf("%-12s %9llu %11llu %13.3f %13.3f %7.2fx %7s\n",
                Name.c_str(), (unsigned long long)R.On.SpecRuns,
                (unsigned long long)R.On.InstrsGenerated, PlanNs, LegacyNs,
                R.Speedup, R.Parity ? "ok" : "FAIL");
    Rows.push_back(std::move(R));
  }

  bool GateOk = GatePass >= 3;
  std::printf("\nplan >= 2x on %u/5 kernels (gate: 3) %s; counter parity "
              "%s\n",
              GatePass, GateOk ? "ok" : "FAIL", ParityOk ? "ok" : "FAIL");

  bool CheckPassed = ParityOk && GateOk;
  if (Json)
    writeJson(Json, Rows, GatePass, Check, CheckPassed);

  if (Check && !CheckPassed) {
    std::fprintf(stderr,
                 "FAIL: %s\n",
                 !ParityOk ? "plan/legacy counter parity diverged"
                           : "plan speedup gate missed (need >= 2x on 3 of "
                             "5 kernels)");
    return 1;
  }
  return 0;
}
