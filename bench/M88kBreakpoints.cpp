//===- bench/M88kBreakpoints.cpp --------------------------------------------------===//
//
// Section 4.2 of the paper: with the SPEC input m88ksim has no
// breakpoints, so only 6 instructions are generated at 365 cycles each;
// "our experiments with 5 breakpoints yielded 98 generated instructions
// at a cost of only 66 cycles per instruction" — as the region grows, the
// fixed dynamic-compilation costs amortize. This bench sweeps the number
// of enabled breakpoints.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("m88ksim breakpoint sweep (section 4.2)\n\n");
  printf("%6s %12s %14s %12s %10s\n", "#bkpts", "instrs gen",
         "DC overhead", "cyc/instr", "speedup");
  printf("%s\n", std::string(60, '-').c_str());

  for (int NBk = 0; NBk <= 5; ++NBk) {
    workloads::Workload W = workloads::workloadByName("m88ksim");
    auto BaseSetup = W.Setup;
    W.Setup = [BaseSetup, NBk](vm::VM &M) {
      workloads::WorkloadSetup S = BaseSetup(M);
      // The breakpoint table is the first allocation (base from RegionArgs).
      int64_t Bkpts = S.RegionArgs[0].asInt();
      for (int I = 0; I != NBk; ++I) {
        M.memory()[Bkpts + I * 2] = Word::fromInt(1);          // enabled
        M.memory()[Bkpts + I * 2 + 1] = Word::fromInt(100 + I * 8);
      }
      return S;
    };
    core::RegionPerf P = core::measureRegion(W, OptFlags());
    printf("%6d %12llu %14llu %12.0f %10.1f%s\n", NBk,
           (unsigned long long)P.InstructionsGenerated,
           (unsigned long long)P.OverheadCycles, P.OverheadPerInstr,
           P.AsymptoticSpeedup, P.OutputsMatch ? "" : "  [MISMATCH]");
  }
  printf("\nPaper: 0 breakpoints -> 6 instructions at 365 cyc/instr; 5 "
         "breakpoints -> 98 at 66 cyc/instr\n(per-instruction overhead "
         "falls as the generated region grows).\n");
  return 0;
}
