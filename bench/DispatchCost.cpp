//===- bench/DispatchCost.cpp -----------------------------------------------------===//
//
// Section 4.4.3 of the paper: dispatch costs. An unchecked dispatch is a
// load and an indirect jump (~10 cycles); the general double-hashed
// cache-all dispatch averages ~90 cycles, rising to ~150 in mipsi due to
// hash collisions; under cache-all the kernels binary and query slow down
// below their statically compiled versions.
//
// This bench reports (a) the modeled per-dispatch cycle costs measured on
// real workloads by differencing the two policies, (b) probe statistics
// of the double-hash table under load, and (c) host-side nanoseconds per
// cache operation via google-benchmark (run with --gbench).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "runtime/CodeCache.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

using namespace dyc;

namespace {

void reportPolicyCosts() {
  printf("Dispatch-cost study (section 4.4.3)\n\n");
  vm::CostModel CM;
  printf("modeled unchecked dispatch:       %u cycles (load + indirect "
         "jump)\n",
         CM.DispatchUnchecked);
  printf("modeled hashed dispatch (2-word key, 1 probe): %u cycles\n\n",
         CM.hashedDispatchCost(2, 1));

  // Measured per-invocation delta between cache_one_unchecked (the
  // workloads' annotation) and forced cache-all.
  printf("%-12s %16s %16s %14s %9s  %s\n", "workload", "dyn cyc/inv",
         "cache-all cyc", "delta/disp", "probes", "speedup all/unchecked");
  const char *Names[] = {"m88ksim", "binary", "query", "mipsi"};
  for (const char *Name : Names) {
    const workloads::Workload &W = workloads::workloadByName(Name);
    core::RegionPerf Fast = core::measureRegion(W, OptFlags());
    OptFlags NoUnchecked;
    NoUnchecked.UncheckedDispatching = false;
    core::RegionPerf Slow = core::measureRegion(W, NoUnchecked);
    double DispatchesPerInvoke =
        Fast.Stats.Dispatches
            ? static_cast<double>(Fast.Stats.Dispatches) /
                  (W.RegionInvocations + 1)
            : 1.0;
    double Delta = (Slow.DynCyclesPerInvoke - Fast.DynCyclesPerInvoke) /
                   (DispatchesPerInvoke > 0 ? DispatchesPerInvoke : 1.0);
    printf("%-12s %16.1f %16.1f %14.1f %9s  %.2f vs %.2f%s\n", Name,
           Fast.DynCyclesPerInvoke, Slow.DynCyclesPerInvoke, Delta, "-",
           Slow.AsymptoticSpeedup, Fast.AsymptoticSpeedup,
           Slow.AsymptoticSpeedup < 1.0 ? "   <- slowdown under cache-all"
                                        : "");
  }

  // Double-hash probe behavior under load (the mipsi-collision effect).
  printf("\ndouble-hash table probe statistics:\n");
  for (size_t N : {8u, 64u, 512u, 4096u}) {
    DoubleHashTable T;
    DeterministicRNG RNG(0xd15b);
    std::vector<std::vector<Word>> Keys;
    for (size_t I = 0; I != N; ++I) {
      Keys.push_back({Word::fromInt(static_cast<int64_t>(RNG.next())),
                      Word::fromInt(static_cast<int64_t>(I))});
      T.insert(Keys.back(), static_cast<uint32_t>(I));
    }
    uint64_t Probes0 = T.totalProbes(), Lookups0 = T.totalLookups();
    for (const auto &K : Keys)
      (void)T.lookup(K);
    double Avg = static_cast<double>(T.totalProbes() - Probes0) /
                 static_cast<double>(T.totalLookups() - Lookups0);
    vm::CostModel CM2;
    printf("  %5zu entries: %.2f probes/lookup -> ~%u cycles/dispatch\n",
           N, Avg,
           CM2.hashedDispatchCost(2, static_cast<unsigned>(Avg + 0.5)));
  }
}

void BM_CacheAllLookup(benchmark::State &State) {
  runtime::CodeCache C(ir::CachePolicy::CacheAll);
  std::vector<std::vector<Word>> Keys;
  DeterministicRNG RNG(77);
  for (int I = 0; I != 256; ++I) {
    Keys.push_back({Word::fromInt(static_cast<int64_t>(RNG.next()))});
    C.insert(Keys.back(), static_cast<uint32_t>(I));
  }
  size_t I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.lookup(Keys[I++ & 255]));
  }
}
BENCHMARK(BM_CacheAllLookup);

void BM_CacheOneUncheckedLookup(benchmark::State &State) {
  runtime::CodeCache C(ir::CachePolicy::CacheOneUnchecked);
  std::vector<Word> Key = {Word::fromInt(42)};
  C.insert(Key, 7);
  for (auto _ : State) {
    benchmark::DoNotOptimize(C.lookup(Key));
  }
}
BENCHMARK(BM_CacheOneUncheckedLookup);

} // namespace

int main(int argc, char **argv) {
  bool RunGbench = false;
  for (int I = 1; I < argc; ++I)
    if (std::strcmp(argv[I], "--gbench") == 0)
      RunGbench = true;
  reportPolicyCosts();
  if (RunGbench) {
    printf("\nhost-side cache micro-benchmarks:\n");
    int FakeArgc = 1;
    benchmark::Initialize(&FakeArgc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return 0;
}
