//===- bench/BackendThroughput.cpp -------------------------------------------------===//
//
// Host throughput of the two execution backends. Two scenarios:
//
//  1. Inline, per workload: builds the dynamic configuration twice — once
//     on the bytecode backend (translate-on-first-touch), once on the
//     template backend (prebuilt superblock translations) — and times the
//     same region-invocation sequence through both on the predecoded
//     engine. The simulated counters must be bit-identical (hard check);
//     host speed is the measurement.
//
//  2. Server, multi-client churn: one SpecServer under a tight chain
//     budget with N client VMs interleaving hot keys, so every
//     re-specialization is consumed by all clients. On the bytecode
//     backend each client re-translates each fresh chain itself (N builds
//     per chain); the template backend builds once at emit time and every
//     client adopts (1 build + N adoptions). The translation-build
//     reduction is deterministic and is what --check gates on; wall-clock
//     ratios are reported but machine-dependent.
//
// Flags:
//   --quick        shrink the measured invocation counts (CI smoke)
//   --json FILE    write the measurements as JSON (BENCH_backend.json)
//   --check        exit nonzero if the backends' simulated counters
//                  diverge anywhere, or the server scenario's template
//                  clients fail to adopt (builds not reduced)
//
//===----------------------------------------------------------------------===//

#include "backend/Backend.h"
#include "core/Harness.h"
#include "server/SpecServer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BackendRun {
  uint64_t SimInstrs = 0;
  double Seconds = 0;
  uint64_t ExecCycles = 0;
  uint64_t ICacheMisses = 0;
  uint64_t DecodeBuilds = 0;
  uint64_t DecodeAdopts = 0;
  double InstrsPerSec() const { return Seconds > 0 ? SimInstrs / Seconds : 0; }
  double NsPerInstr() const {
    return SimInstrs ? Seconds * 1e9 / SimInstrs : 0;
  }
};

OptFlags withBackend(ExecBackend B) {
  OptFlags Fl;
  Fl.Backend = B;
  return Fl;
}

/// Builds \p W fresh on \p Backend, warms with one invocation
/// (specialization happens there), then times \p Invokes more on the
/// predecoded engine.
BackendRun runInline(const Workload &W, ExecBackend Backend,
                     uint64_t Invokes) {
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto E = Ctx.buildDynamic(withBackend(Backend));
  E->Machine->Engine = vm::VM::EngineKind::Predecoded;
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.RegionFunc);
  if (FI < 0)
    fatal(W.Name + ": region function not found");

  E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs); // warmup

  BackendRun R;
  uint64_t I0 = E->Machine->instrsExecuted();
  double T0 = nowSeconds();
  for (uint64_t I = 0; I != Invokes; ++I)
    E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs);
  R.Seconds = nowSeconds() - T0;
  R.SimInstrs = E->Machine->instrsExecuted() - I0;
  R.ExecCycles = E->Machine->execCycles();
  R.ICacheMisses = E->Machine->icache().misses();
  R.DecodeBuilds = E->Machine->decodeBuilds();
  R.DecodeAdopts = E->Machine->decodeAdopts();
  return R;
}

uint64_t calibrate(const Workload &W, double TargetSeconds) {
  const uint64_t Probe = 16;
  BackendRun R = runInline(W, ExecBackend::Bytecode, Probe);
  if (R.Seconds <= 0)
    return Probe;
  double Scale = TargetSeconds / (R.Seconds / Probe);
  return std::clamp<uint64_t>(static_cast<uint64_t>(Scale), Probe, 50000);
}

struct Row {
  std::string Name;
  uint64_t Invocations = 0;
  BackendRun Bytecode, Template;
  double Ratio = 0; ///< template instrs/s over bytecode instrs/s
  bool CountersIdentical = false;
};

const char *ServerSrc = "int f(int n) {\n"
                        "  int i;\n"
                        "  make_static(n, i : cache_all);\n"
                        "  int s = 0;\n"
                        "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                        "  return s;\n"
                        "}";

struct ServerRun {
  double Seconds = 0;
  uint64_t ClientBuilds = 0; ///< summed over all client VMs
  uint64_t ClientAdopts = 0;
  uint64_t ArtifactsReleased = 0;
  uint64_t Checksum = 0;
};

ServerRun runServer(ExecBackend Backend, unsigned Clients, int Rounds) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(ServerSrc, Errors))
    fatal("server kernel failed to compile");
  server::ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.OnMiss = server::MissPolicy::Block;
  Cfg.Budget.MaxEntries = 2; // churn: 4 live keys, 2 cached chains
  auto Server = Ctx.buildServer(withBackend(Backend), std::move(Cfg));
  std::vector<std::unique_ptr<vm::VM>> Vs;
  for (unsigned C = 0; C != Clients; ++C)
    Vs.push_back(Server->makeClientVM());
  int FS = Server->findFunction("f");
  if (FS < 0)
    fatal("server kernel: f not found");

  ServerRun R;
  const int64_t Keys[] = {3, 9, 17, 5};
  double T0 = nowSeconds();
  // Key-major interleave: each fresh specialization is consumed by every
  // client before the next key evicts it.
  for (int Round = 0; Round != Rounds; ++Round)
    for (int64_t K : Keys)
      for (auto &V : Vs)
        R.Checksum +=
            static_cast<uint64_t>(V->run(static_cast<uint32_t>(FS),
                                         {Word::fromInt(K)})
                                      .asInt());
  Server->drain();
  R.Seconds = nowSeconds() - T0;
  for (auto &V : Vs) {
    R.ClientBuilds += V->decodeBuilds();
    R.ClientAdopts += V->decodeAdopts();
  }
  R.ArtifactsReleased = Server->backend().stats().ArtifactsReleased.load(
      std::memory_order_relaxed);
  return R;
}

void writeJson(const char *Path, const std::vector<Row> &Rows,
               const ServerRun &SB, const ServerRun &ST, unsigned Clients,
               bool Check, bool CheckPassed) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"backend_throughput\",\n");
  std::fprintf(F, "  \"dispatch\": \"%s\",\n", vm::VM::dispatchMode());
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"invocations\": %llu,\n"
                 "     \"sim_instrs\": %llu,\n"
                 "     \"counters_identical\": %s,\n"
                 "     \"bytecode\": {\"host_instrs_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f, \"decode_builds\": %llu},\n"
                 "     \"template\": {\"host_instrs_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f, \"decode_builds\": %llu, "
                 "\"decode_adopts\": %llu},\n"
                 "     \"ratio\": %.3f}%s\n",
                 R.Name.c_str(), (unsigned long long)R.Invocations,
                 (unsigned long long)R.Template.SimInstrs,
                 R.CountersIdentical ? "true" : "false",
                 R.Bytecode.InstrsPerSec(), R.Bytecode.NsPerInstr(),
                 (unsigned long long)R.Bytecode.DecodeBuilds,
                 R.Template.InstrsPerSec(), R.Template.NsPerInstr(),
                 (unsigned long long)R.Template.DecodeBuilds,
                 (unsigned long long)R.Template.DecodeAdopts, R.Ratio,
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n");
  std::fprintf(
      F,
      "  \"server_churn\": {\"clients\": %u,\n"
      "    \"bytecode\": {\"seconds\": %.4f, \"client_decode_builds\": %llu},\n"
      "    \"template\": {\"seconds\": %.4f, \"client_decode_builds\": %llu, "
      "\"client_decode_adopts\": %llu, \"artifacts_released\": %llu},\n"
      "    \"builds_saved\": %lld, \"speedup\": %.3f},\n",
      Clients, SB.Seconds, (unsigned long long)SB.ClientBuilds, ST.Seconds,
      (unsigned long long)ST.ClientBuilds,
      (unsigned long long)ST.ClientAdopts,
      (unsigned long long)ST.ArtifactsReleased,
      (long long)(SB.ClientBuilds - ST.ClientBuilds),
      ST.Seconds > 0 ? SB.Seconds / ST.Seconds : 0);
  std::fprintf(F, "  \"check\": %s,\n  \"check_passed\": %s\n}\n",
               Check ? "true" : "false", CheckPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = hasFlag(Argc, Argv, "--quick") ||
               [] {
                 const char *E = std::getenv("DYC_BENCH_QUICK");
                 return E && E[0] == '1';
               }();
  bool Check = hasFlag(Argc, Argv, "--check");
  const char *Json = jsonPath(Argc, Argv);

  const std::vector<std::string> Names = {"dotproduct", "pnmconvol",
                                          "chebyshev", "dinero"};
  double Target = Quick ? 0.05 : 0.4;

  std::printf("execution-backend throughput (dispatch: %s, engine: "
              "predecoded)\n",
              vm::VM::dispatchMode());
  std::printf("%-12s %10s %14s %14s %8s %7s\n", "workload", "invokes",
              "bytecode i/s", "template i/s", "ratio", "parity");

  std::vector<Row> Rows;
  bool CheckPassed = true;
  for (const std::string &Name : Names) {
    const Workload &W = workloads::workloadByName(Name);
    Row R;
    R.Name = Name;
    R.Invocations = calibrate(W, Target);
    R.Bytecode = runInline(W, ExecBackend::Bytecode, R.Invocations);
    R.Template = runInline(W, ExecBackend::Template, R.Invocations);
    R.Ratio = R.Bytecode.Seconds > 0 && R.Template.Seconds > 0
                  ? R.Template.InstrsPerSec() / R.Bytecode.InstrsPerSec()
                  : 0;
    R.CountersIdentical =
        R.Bytecode.SimInstrs == R.Template.SimInstrs &&
        R.Bytecode.ExecCycles == R.Template.ExecCycles &&
        R.Bytecode.ICacheMisses == R.Template.ICacheMisses;
    if (!R.CountersIdentical)
      CheckPassed = false;
    std::printf("%-12s %10llu %14.0f %14.0f %7.2fx %7s\n", Name.c_str(),
                (unsigned long long)R.Invocations,
                R.Bytecode.InstrsPerSec(), R.Template.InstrsPerSec(),
                R.Ratio, R.CountersIdentical ? "ok" : "FAIL");
    Rows.push_back(std::move(R));
  }

  const unsigned Clients = 8;
  const int Rounds = Quick ? 20 : 200;
  ServerRun SB = runServer(ExecBackend::Bytecode, Clients, Rounds);
  ServerRun ST = runServer(ExecBackend::Template, Clients, Rounds);
  bool ServerOk = ST.Checksum == SB.Checksum &&
                  ST.ClientAdopts > 0 && ST.ClientBuilds < SB.ClientBuilds;
  if (!ServerOk)
    CheckPassed = false;
  std::printf("\nserver churn (%u clients, %d rounds): bytecode %llu client "
              "translate-builds in %.3fs; template %llu builds + %llu "
              "adoptions in %.3fs (%.2fx, %lld builds saved) %s\n",
              Clients, Rounds, (unsigned long long)SB.ClientBuilds,
              SB.Seconds, (unsigned long long)ST.ClientBuilds,
              (unsigned long long)ST.ClientAdopts, ST.Seconds,
              ST.Seconds > 0 ? SB.Seconds / ST.Seconds : 0,
              (long long)(SB.ClientBuilds - ST.ClientBuilds),
              ServerOk ? "ok" : "FAIL");

  if (Json)
    writeJson(Json, Rows, SB, ST, Clients, Check, CheckPassed);

  if (Check && !CheckPassed) {
    std::fprintf(stderr, "FAIL: backend counter parity or server adoption "
                         "check failed\n");
    return 1;
  }
  return 0;
}
