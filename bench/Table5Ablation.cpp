//===- bench/Table5Ablation.cpp ---------------------------------------------------===//
//
// Regenerates Table 5 of the paper: "Dynamic Region Asymptotic Speedups
// without a Particular Feature" — the ablation study. Each column
// disables exactly one staged optimization; entries are printed only
// where the optimization is applicable to the region (as in the paper).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  // Column order mirrors the paper's Table 5.
  const unsigned Cols[] = {0, 1, 3, 2, 4, 5, 6, 7, 8};
  const char *Heads[] = {"-Unrol", "-SLoad", "-UDisp", "-SCall", "-ZCP",
                         "-DAE",   "-SR",    "-IProm", "-PDiv"};

  printf("Table 5: Dynamic Region Asymptotic Speedups without a "
         "Particular Feature\n");
  printf("('.' = optimization not applicable to this region; values < 1 "
         "are slowdowns vs static code)\n\n");
  printf("%-22s %6s", "Dynamic Region", "All");
  for (const char *H : Heads)
    printf(" %6s", H);
  printf("\n%s\n", std::string(92, '-').c_str());

  for (const workloads::Workload &W : workloads::allWorkloads()) {
    core::RegionPerf Base = core::measureRegion(W, OptFlags());
    const runtime::RegionStats &St = Base.Stats;

    core::DycContext Ctx;
    core::compileWorkload(W, Ctx);
    std::vector<bta::RegionInfo> Regions = Ctx.analyze(OptFlags());
    const bta::RegionInfo *R = nullptr;
    for (const bta::RegionInfo &Candidate : Regions)
      if (!Candidate.Contexts.empty() &&
          Ctx.module().function(Candidate.FuncIdx).Name == W.RegionFunc)
        R = &Candidate;
    bool UsesUnchecked = false;
    if (R)
      for (const bta::PromoPoint &P : R->Promos)
        if (P.Policy == ir::CachePolicy::CacheOneUnchecked)
          UsesUnchecked = true;

    // Applicability per toggle index (0..8, OptFlags order).
    bool Applicable[9] = {
        R && R->UnrollsLoop,            // complete loop unrolling
        St.StaticLoadsExecuted > 0,     // static loads
        St.StaticCallsExecuted > 0,     // static calls
        UsesUnchecked,                  // unchecked dispatching
        St.ZcpApplied > 0,              // zero & copy propagation
        St.DeadAssignsEliminated > 0,   // dead-assignment elimination
        St.StrengthReduced > 0,         // strength reduction
        R && R->HasInternalPromotions,  // internal promotions
        R && R->HasPolyvariantDivision, // polyvariant division
    };

    printf("%-22s %6.1f", W.Name.c_str(), Base.AsymptoticSpeedup);
    for (unsigned C : Cols) {
      if (!Applicable[C]) {
        printf(" %6s", ".");
        continue;
      }
      OptFlags Fl;
      Fl.toggle(C) = false;
      core::RegionPerf P = core::measureRegion(W, Fl);
      printf(" %5.1f%s", P.AsymptoticSpeedup, P.OutputsMatch ? "" : "!");
    }
    printf("\n");
  }

  printf("\nPaper's headline ablation results for reference:\n");
  printf("  - complete loop unrolling is the single most important "
         "optimization (most programs slow down without it);\n");
  printf("  - pnmconvol drops from 3.1 to 0.8 without DAE (I-cache "
         "overflow);\n");
  printf("  - chebyshev drops from 6.3 to 1.2 without static calls;\n");
  printf("  - m88ksim needs unchecked dispatching (3.7 -> 1.6 with "
         "cache-all);\n");
  printf("  - kernels binary and query slow down under cache-all.\n");
  return 0;
}
