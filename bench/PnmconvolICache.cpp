//===- bench/PnmconvolICache.cpp --------------------------------------------------===//
//
// Section 4.4.4 of the paper: pnmconvol's speedup comes mainly from
// dynamic dead-assignment elimination — "Without it, the amount of
// generated code exceeded the size of the L1 cache by a factor of 2.7,
// causing slowdowns relative to the static code." This bench measures
// generated-code size and speedup with DAE on/off across I-cache sizes.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("pnmconvol generated-code footprint vs. L1 I-cache "
         "(section 4.4.4)\n\n");
  const workloads::Workload &W = workloads::workloadByName("pnmconvol");

  for (bool DAE : {true, false}) {
    OptFlags Fl;
    Fl.DeadAssignmentElimination = DAE;
    printf("dead-assignment elimination %s:\n", DAE ? "ON " : "OFF");
    printf("  %-10s %12s %12s %10s\n", "I-cache", "code bytes", "ratio",
           "speedup");
    for (uint32_t KB : {4u, 8u, 16u, 32u}) {
      vm::ICacheConfig IC;
      IC.SizeBytes = KB * 1024;
      core::RegionPerf P = core::measureRegion(W, Fl, vm::CostModel(), IC);
      uint64_t CodeBytes = P.InstructionsGenerated * 4;
      printf("  %6uKB   %12llu %11.2fx %10.2f%s\n", KB,
             (unsigned long long)CodeBytes,
             static_cast<double>(CodeBytes) / (KB * 1024.0),
             P.AsymptoticSpeedup,
             P.AsymptoticSpeedup < 1.0 ? "   <- slowdown" : "");
    }
  }
  printf("\nPaper: with DAE the region runs 3.1x faster; without it the "
         "generated code is 2.7x the\n8KB L1 I-cache and the dynamic code "
         "is slower than static code (0.8x).\n");
  return 0;
}
