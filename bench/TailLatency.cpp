//===- bench/TailLatency.cpp -------------------------------------------------------===//
//
// Multi-tenant tail-latency harness: a trace-driven open-loop load
// generator. A simulated population of clients (millions in the full
// run) issues requests against the multi-tenant SpecServer; every client
// maps to one of a few tenants, and key popularity is Zipfian, so a hot
// head of keys is shared by everyone while a long tail of cold keys
// forces compiles — and, in the second phase, eviction churn.
//
// Open-loop means every request has a *scheduled* arrival time on a fixed
// interval; latency is measured from the scheduled arrival to completion,
// so a request stuck behind a blocking compile inherits the queueing
// delay — the honest tail, not the closed-loop one.
//
// Two phases over the identical per-tenant trace:
//  - dedup: no eviction budget. The gate behind `--check`: the chain
//    store compiles each unique key exactly once no matter how many
//    tenants request it (global SpecRuns == unique keys, DedupHits ==
//    (tenants-1) * unique keys), and every tenant's ledger and simulated
//    machine counters are bit-identical to a dedicated single-tenant
//    server replaying the same trace.
//  - evict: a small per-tenant residency quota forces CLOCK eviction and
//    cross-tenant refcount churn; the latency percentiles show what the
//    recompile tail costs.
//
// `--quick` (or DYC_BENCH_QUICK=1) shrinks the run for CI; `--json FILE`
// writes the BENCH_tail.json artifact; `--check` exits nonzero if the
// dedup or parity gate fails.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace dyc;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

bool quickMode(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--quick"))
    return true;
  const char *Env = std::getenv("DYC_BENCH_QUICK");
  return Env && Env[0] == '1';
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

/// xorshift64* — deterministic across hosts, like the repo's other RNGs.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dULL;
  }
  double unit() { // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1p-53;
  }
};

/// Zipfian key sampler over ranks 1..N (exponent S), inverse-CDF over the
/// precomputed cumulative weights.
struct Zipf {
  std::vector<double> Cum;
  Zipf(size_t N, double S) {
    Cum.reserve(N);
    double Total = 0;
    for (size_t R = 1; R <= N; ++R) {
      Total += 1.0 / std::pow(static_cast<double>(R), S);
      Cum.push_back(Total);
    }
    for (double &C : Cum)
      C /= Total;
  }
  size_t draw(Rng &R) const {
    double U = R.unit();
    return static_cast<size_t>(
        std::lower_bound(Cum.begin(), Cum.end(), U) - Cum.begin());
  }
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

int64_t triangular(int64_t N) { return N * (N - 1) / 2; }

struct PhaseResult {
  const char *Phase = "";
  double P50Us = 0, P99Us = 0, P999Us = 0;
  uint64_t Requests = 0;
  uint64_t SpecRuns = 0, DedupHits = 0, StoreChains = 0, Evictions = 0;
};

/// The ledger fields of the tenant-parity contract (the counters a
/// dedicated single-tenant server replaying the trace must match).
bool ledgerEq(const server::ServerStatsSnapshot &A,
              const server::ServerStatsSnapshot &B) {
  return A.Dispatches == B.Dispatches && A.CacheHits == B.CacheHits &&
         A.CacheMisses == B.CacheMisses && A.Fallbacks == B.Fallbacks &&
         A.JobsEnqueued == B.JobsEnqueued &&
         A.JobsCoalesced == B.JobsCoalesced && A.SpecRuns == B.SpecRuns &&
         A.Evictions == B.Evictions && A.ChainsCreated == B.ChainsCreated &&
         A.QuotaRejections == B.QuotaRejections;
}

/// Replays the trace through T tenants round-robin under an open-loop
/// arrival schedule; fills latencies and returns the final global stats.
PhaseResult runPhase(const char *Phase, core::DycContext &Ctx,
                     const std::vector<int64_t> &Keys, unsigned Tenants,
                     size_t MaxEntries, double StepUs) {
  server::ServerConfig Cfg;
  Cfg.NumWorkers = 1;
  Cfg.Quota.Budget.MaxEntries = MaxEntries;
  std::unique_ptr<server::SpecServer> Server =
      Ctx.buildMultiTenant(OptFlags(), std::move(Cfg));
  int F = Server->findFunction("f");
  if (F < 0)
    fatal("tail-latency region not found");
  std::vector<std::unique_ptr<vm::VM>> Clients;
  for (unsigned T = 1; T <= Tenants; ++T)
    Clients.push_back(Server->makeClientVM(T));

  std::vector<double> LatUs;
  LatUs.reserve(Keys.size() * Tenants);
  auto Start = std::chrono::steady_clock::now();
  uint64_t Req = 0;
  for (size_t I = 0; I != Keys.size(); ++I) {
    for (unsigned T = 0; T != Tenants; ++T, ++Req) {
      double ScheduledUs = static_cast<double>(Req) * StepUs;
      for (;;) { // open loop: wait for the scheduled arrival, never ahead
        double NowUs = std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - Start)
                           .count();
        if (NowUs >= ScheduledUs)
          break;
      }
      Word Ret = Clients[T]->run(static_cast<uint32_t>(F),
                                 {Word::fromInt(Keys[I])});
      if (Ret.asInt() != triangular(Keys[I]))
        fatal("tail-latency produced a wrong sum");
      double DoneUs = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - Start)
                          .count();
      LatUs.push_back(DoneUs - ScheduledUs);
    }
  }
  Server->drain();

  PhaseResult R;
  R.Phase = Phase;
  R.Requests = Req;
  server::ServerStatsSnapshot S = Server->stats();
  R.SpecRuns = S.SpecRuns;
  R.DedupHits = S.DedupHits;
  R.StoreChains = S.StoreChains;
  R.Evictions = S.Evictions;
  std::sort(LatUs.begin(), LatUs.end());
  R.P50Us = percentile(LatUs, 0.50);
  R.P99Us = percentile(LatUs, 0.99);
  R.P999Us = percentile(LatUs, 0.999);
  return R;
}

void printRow(const PhaseResult &R) {
  std::printf("  %-6s %9llu %9.1f %9.1f %9.1f %8llu %8llu %8llu %8llu\n",
              R.Phase, static_cast<unsigned long long>(R.Requests), R.P50Us,
              R.P99Us, R.P999Us,
              static_cast<unsigned long long>(R.SpecRuns),
              static_cast<unsigned long long>(R.DedupHits),
              static_cast<unsigned long long>(R.StoreChains),
              static_cast<unsigned long long>(R.Evictions));
}

void writeJson(const char *Path, bool Quick, unsigned Tenants,
               uint64_t ClientSpace, uint64_t UniqueKeys,
               const PhaseResult &Dedup, const PhaseResult &Evict,
               bool DedupOk, bool ParityOk) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    fatal("cannot open --json output file");
  std::fprintf(F, "{\n  \"bench\": \"tail_latency\",\n");
  std::fprintf(F, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(F, "  \"tenants\": %u,\n", Tenants);
  std::fprintf(F, "  \"simulated_clients\": %llu,\n",
               static_cast<unsigned long long>(ClientSpace));
  std::fprintf(F, "  \"unique_keys\": %llu,\n",
               static_cast<unsigned long long>(UniqueKeys));
  std::fprintf(F, "  \"phases\": [\n");
  const PhaseResult *Rows[] = {&Dedup, &Evict};
  for (size_t I = 0; I != 2; ++I) {
    const PhaseResult &R = *Rows[I];
    std::fprintf(F,
                 "    {\"phase\": \"%s\", \"requests\": %llu, \"p50_us\": "
                 "%.2f, \"p99_us\": %.2f, \"p999_us\": %.2f, "
                 "\"spec_runs\": %llu, \"dedup_hits\": %llu, "
                 "\"store_chains\": %llu, \"evictions\": %llu}%s\n",
                 R.Phase, static_cast<unsigned long long>(R.Requests),
                 R.P50Us, R.P99Us, R.P999Us,
                 static_cast<unsigned long long>(R.SpecRuns),
                 static_cast<unsigned long long>(R.DedupHits),
                 static_cast<unsigned long long>(R.StoreChains),
                 static_cast<unsigned long long>(R.Evictions),
                 I == 0 ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"check\": {\"dedup_ok\": %s, "
                  "\"tenant_parity_ok\": %s}\n}\n",
               DedupOk ? "true" : "false", ParityOk ? "true" : "false");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = quickMode(Argc, Argv);
  const unsigned Tenants = Quick ? 2 : 4;
  const uint64_t ClientSpace = Quick ? 100000 : 4000000;
  const size_t NumKeys = Quick ? 32 : 256;
  const size_t Requests = Quick ? 1500 : 20000; // per tenant
  const size_t MaxEntries = Quick ? 8 : 32;     // evict-phase quota
  const int64_t NBase = 32;

  // The trace: every request names a simulated client (Zipf-independent,
  // uniform over the population — it decides nothing but shows the
  // request's origin in a real deployment) and a Zipf-ranked key. All
  // tenants replay the identical key sequence; that is what makes
  // "identical workloads -> one chain per unique key" checkable.
  Rng R(0x7a11);
  Zipf Z(NumKeys, 1.1);
  std::vector<int64_t> Keys;
  Keys.reserve(Requests);
  uint64_t ClientsTouched = 0;
  for (size_t I = 0; I != Requests; ++I) {
    ClientsTouched += R.next() % ClientSpace != 0; // draw a client id
    Keys.push_back(NBase + static_cast<int64_t>(Z.draw(R)));
  }
  (void)ClientsTouched;
  uint64_t UniqueKeys = 0;
  {
    std::vector<int64_t> Sorted = Keys;
    std::sort(Sorted.begin(), Sorted.end());
    UniqueKeys = static_cast<uint64_t>(
        std::unique(Sorted.begin(), Sorted.end()) - Sorted.begin());
  }

  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(SumSrc, Errors))
    fatal("tail-latency source failed to compile");

  // Dedicated single-tenant reference for the parity gate: the same
  // trace, one tenant, its own server.
  server::ServerStatsSnapshot RefStats;
  uint64_t RefExecCycles = 0, RefIMisses = 0;
  {
    server::ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    std::unique_ptr<server::SpecServer> Ref =
        Ctx.buildServer(OptFlags(), std::move(Cfg));
    std::unique_ptr<vm::VM> VM = Ref->makeClientVM();
    int F = Ref->findFunction("f");
    for (int64_t K : Keys)
      if (VM->run(static_cast<uint32_t>(F), {Word::fromInt(K)}).asInt() !=
          triangular(K))
        fatal("tail-latency reference produced a wrong sum");
    RefStats = Ref->stats();
    RefExecCycles = VM->execCycles();
    RefIMisses = VM->icache().misses();
  }

  // Calibrate the open-loop arrival interval to ~2x a warm cache hit on a
  // throwaway server, so the schedule is feasible in steady state and
  // compile stalls show up as queueing delay rather than a permanently
  // growing backlog.
  double StepUs = 2.0;
  {
    server::ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    std::unique_ptr<server::SpecServer> Cal =
        Ctx.buildServer(OptFlags(), std::move(Cfg));
    std::unique_ptr<vm::VM> VM = Cal->makeClientVM();
    int F = Cal->findFunction("f");
    VM->run(static_cast<uint32_t>(F), {Word::fromInt(NBase)});
    auto C0 = std::chrono::steady_clock::now();
    for (int I = 0; I != 200; ++I)
      VM->run(static_cast<uint32_t>(F), {Word::fromInt(NBase)});
    double WarmUs = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - C0)
                        .count() /
                    200.0;
    StepUs = std::max(2.0, 2.0 * WarmUs);
  }

  std::printf("tail latency: %u tenants, %llu simulated clients, "
              "%zu reqs/tenant, %llu unique keys (zipf 1.1)\n",
              Tenants, static_cast<unsigned long long>(ClientSpace),
              Requests, static_cast<unsigned long long>(UniqueKeys));
  std::printf("  %-6s %9s %9s %9s %9s %8s %8s %8s %8s\n", "phase", "reqs",
              "p50-us", "p99-us", "p999-us", "runs", "dedup", "store",
              "evict");

  PhaseResult Dedup = runPhase("dedup", Ctx, Keys, Tenants, 0, StepUs);
  printRow(Dedup);
  PhaseResult Evict =
      runPhase("evict", Ctx, Keys, Tenants, MaxEntries, StepUs);
  printRow(Evict);

  // Gates. Dedup: one compile per unique (region, key, flags) across all
  // tenants. Parity: re-run one more multi-tenant server tenant-major and
  // compare every tenant against the dedicated reference.
  bool DedupOk = Dedup.SpecRuns == UniqueKeys &&
                 Dedup.StoreChains == UniqueKeys &&
                 Dedup.DedupHits == (Tenants - 1) * UniqueKeys;
  bool ParityOk = true;
  {
    server::ServerConfig Cfg;
    Cfg.NumWorkers = 1;
    std::unique_ptr<server::SpecServer> Server =
        Ctx.buildMultiTenant(OptFlags(), std::move(Cfg));
    int F = Server->findFunction("f");
    for (unsigned T = 1; T <= Tenants; ++T) {
      std::unique_ptr<vm::VM> VM = Server->makeClientVM(T);
      for (int64_t K : Keys)
        VM->run(static_cast<uint32_t>(F), {Word::fromInt(K)});
      ParityOk = ParityOk &&
                 ledgerEq(Server->tenantStats(T), RefStats) &&
                 VM->execCycles() == RefExecCycles &&
                 VM->icache().misses() == RefIMisses;
    }
  }

  std::printf("\ndedup gate %s (%llu unique keys -> %llu compiles, "
              "%llu adoptions), tenant parity %s\n",
              DedupOk ? "held" : "FAILED",
              static_cast<unsigned long long>(UniqueKeys),
              static_cast<unsigned long long>(Dedup.SpecRuns),
              static_cast<unsigned long long>(Dedup.DedupHits),
              ParityOk ? "held" : "FAILED");

  if (const char *Path = jsonPath(Argc, Argv))
    writeJson(Path, Quick, Tenants, ClientSpace, UniqueKeys, Dedup, Evict,
              DedupOk, ParityOk);

  if (hasFlag(Argc, Argv, "--check") && !(DedupOk && ParityOk))
    return 1;
  return 0;
}
