//===- bench/ServerThroughput.cpp --------------------------------------------------===//
//
// Multi-client scaling of the SpecServer. Two experiments:
//
//  1. Client-thread sweep: a kernel workload dispatched through the
//     service by 1/2/4/8 concurrent client VMs, reporting host wall-clock
//     dispatch throughput. Hits probe a published immutable snapshot with
//     no lock, so throughput should scale with clients; the single
//     specialization lock is off the hot path once the cache is warm.
//
//  2. Capacity sweep: clients cycling through more distinct keys than the
//     per-region budget admits, reporting how throughput degrades as the
//     CLOCK policy thrashes (eviction -> re-dispatch -> respecialize).
//
// `--quick` (or DYC_BENCH_QUICK=1) shrinks both sweeps so the binary can
// run under ThreadSanitizer in CI in seconds. `--json FILE` additionally
// writes the measurements as a JSON document (the CI BENCH_server.json
// artifact).
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace dyc;

namespace {

bool quickMode(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      return true;
  const char *Env = std::getenv("DYC_BENCH_QUICK");
  return Env && Env[0] == '1';
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

struct ThreadRow {
  unsigned Threads = 0;
  double InvocationsPerSec = 0;
  double WallSeconds = 0;
  bool OutputsMatch = false;
};

struct CapacityRow {
  size_t MaxEntries = 0; ///< 0 = unbounded
  double InvocationsPerSec = 0;
  uint64_t SpecRuns = 0;
  uint64_t Evictions = 0;
  size_t Resident = 0;
};

std::vector<ThreadRow> threadSweep(uint64_t InvocationsPerThread) {
  const workloads::Workload &W = workloads::workloadByName("dotproduct");
  std::printf("client-thread sweep: workload=%s, %llu invocations/thread\n",
              W.Name.c_str(),
              static_cast<unsigned long long>(InvocationsPerThread));
  std::printf("  %-8s %12s %12s %10s %8s\n", "threads", "invocs/sec",
              "wall-sec", "speedup", "match");

  std::vector<ThreadRow> Rows;
  double Base = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    core::ServerThroughputPerf P = core::measureServerThroughput(
        W, OptFlags(), Threads, InvocationsPerThread);
    if (Threads == 1)
      Base = P.InvocationsPerSec;
    std::printf("  %-8u %12.0f %12.4f %9.2fx %8s\n", Threads,
                P.InvocationsPerSec, P.WallSeconds,
                Base > 0 ? P.InvocationsPerSec / Base : 0.0,
                P.OutputsMatch ? "yes" : "NO");
    Rows.push_back({Threads, P.InvocationsPerSec, P.WallSeconds,
                    P.OutputsMatch});
  }
  return Rows;
}

// A region with one specialization per distinct n; clients rotate through
// `NumKeys` values so a small budget forces steady-state eviction.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

std::vector<CapacityRow> capacitySweep(uint64_t InvocationsPerThread) {
  constexpr unsigned NumThreads = 4;
  constexpr int64_t NumKeys = 16;
  std::printf("\ncapacity sweep: %u threads rotating over %lld keys, "
              "%llu invocations/thread\n",
              NumThreads, static_cast<long long>(NumKeys),
              static_cast<unsigned long long>(InvocationsPerThread));
  std::printf("  %-10s %12s %10s %10s %10s\n", "budget", "invocs/sec",
              "specruns", "evictions", "resident");

  std::vector<CapacityRow> Rows;
  for (size_t MaxEntries : {size_t(0), size_t(16), size_t(8), size_t(4)}) {
    core::DycContext Ctx;
    std::vector<std::string> Errors;
    if (!Ctx.compile(SumSrc, Errors))
      fatal("capacity-sweep source failed to compile");

    server::ServerConfig Cfg;
    Cfg.Budget.MaxEntries = MaxEntries;
    auto Server = Ctx.buildServer(OptFlags(), std::move(Cfg));
    int F = Server->findFunction("f");

    std::vector<std::unique_ptr<vm::VM>> Clients;
    for (unsigned T = 0; T != NumThreads; ++T)
      Clients.push_back(Server->makeClientVM());

    auto Start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> Pool;
      for (unsigned T = 0; T != NumThreads; ++T)
        Pool.emplace_back([&, T] {
          vm::VM &M = *Clients[T];
          for (uint64_t I = 0; I != InvocationsPerThread; ++I) {
            // Offset by thread id so clients are usually on different keys.
            int64_t N = 2 + (I + T * 3) % NumKeys;
            Word R = M.run(static_cast<uint32_t>(F), {Word::fromInt(N)});
            if (R.asInt() != N * (N - 1) / 2)
              fatal("capacity sweep produced a wrong sum");
          }
        });
      for (std::thread &Th : Pool)
        Th.join();
    }
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    Server->drain();

    server::ServerStatsSnapshot S = Server->stats();
    char Budget[32];
    if (MaxEntries)
      std::snprintf(Budget, sizeof(Budget), "%zu", MaxEntries);
    else
      std::snprintf(Budget, sizeof(Budget), "unbounded");
    double PerSec = Wall > 0 ? NumThreads * InvocationsPerThread / Wall : 0.0;
    std::printf("  %-10s %12.0f %10llu %10llu %10zu\n", Budget, PerSec,
                static_cast<unsigned long long>(S.SpecRuns),
                static_cast<unsigned long long>(S.Evictions),
                Server->residentEntries(0));
    Rows.push_back(
        {MaxEntries, PerSec, S.SpecRuns, S.Evictions,
         Server->residentEntries(0)});
  }
  return Rows;
}

void writeJson(const char *Path, bool Quick,
               const std::vector<ThreadRow> &Threads,
               const std::vector<CapacityRow> &Capacity) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    fatal("cannot open --json output file");
  std::fprintf(F, "{\n  \"bench\": \"server_throughput\",\n");
  std::fprintf(F, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(F, "  \"thread_sweep\": [\n");
  for (size_t I = 0; I != Threads.size(); ++I) {
    const ThreadRow &R = Threads[I];
    std::fprintf(F,
                 "    {\"threads\": %u, \"invocations_per_sec\": %.1f, "
                 "\"wall_seconds\": %.6f, \"outputs_match\": %s}%s\n",
                 R.Threads, R.InvocationsPerSec, R.WallSeconds,
                 R.OutputsMatch ? "true" : "false",
                 I + 1 == Threads.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"capacity_sweep\": [\n");
  for (size_t I = 0; I != Capacity.size(); ++I) {
    const CapacityRow &R = Capacity[I];
    std::fprintf(F,
                 "    {\"max_entries\": %zu, \"invocations_per_sec\": %.1f, "
                 "\"spec_runs\": %llu, \"evictions\": %llu, "
                 "\"resident\": %zu}%s\n",
                 R.MaxEntries, R.InvocationsPerSec,
                 static_cast<unsigned long long>(R.SpecRuns),
                 static_cast<unsigned long long>(R.Evictions), R.Resident,
                 I + 1 == Capacity.size() ? "" : ",");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = quickMode(Argc, Argv);
  std::vector<ThreadRow> Threads = threadSweep(Quick ? 50 : 2000);
  std::vector<CapacityRow> Capacity = capacitySweep(Quick ? 200 : 20000);
  if (const char *Path = jsonPath(Argc, Argv))
    writeJson(Path, Quick, Threads, Capacity);
  return 0;
}
