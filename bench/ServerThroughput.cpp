//===- bench/ServerThroughput.cpp --------------------------------------------------===//
//
// Multi-client scaling of the SpecServer. Two experiments:
//
//  1. Client-thread sweep: a kernel workload dispatched through the
//     service by 1/2/4/8 concurrent client VMs, reporting host wall-clock
//     dispatch throughput. Hits probe a published immutable snapshot with
//     no lock, so throughput should scale with clients; the single
//     specialization lock is off the hot path once the cache is warm.
//
//  2. Capacity sweep: clients cycling through more distinct keys than the
//     per-region budget admits, reporting how throughput degrades as the
//     CLOCK policy thrashes (eviction -> re-dispatch -> respecialize).
//
// `--quick` (or DYC_BENCH_QUICK=1) shrinks both sweeps so the binary can
// run under ThreadSanitizer in CI in seconds.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace dyc;

namespace {

bool quickMode(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], "--quick") == 0)
      return true;
  const char *Env = std::getenv("DYC_BENCH_QUICK");
  return Env && Env[0] == '1';
}

void threadSweep(uint64_t InvocationsPerThread) {
  const workloads::Workload &W = workloads::workloadByName("dotproduct");
  std::printf("client-thread sweep: workload=%s, %llu invocations/thread\n",
              W.Name.c_str(),
              static_cast<unsigned long long>(InvocationsPerThread));
  std::printf("  %-8s %12s %12s %10s %8s\n", "threads", "invocs/sec",
              "wall-sec", "speedup", "match");

  double Base = 0;
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    core::ServerThroughputPerf P = core::measureServerThroughput(
        W, OptFlags(), Threads, InvocationsPerThread);
    if (Threads == 1)
      Base = P.InvocationsPerSec;
    std::printf("  %-8u %12.0f %12.4f %9.2fx %8s\n", Threads,
                P.InvocationsPerSec, P.WallSeconds,
                Base > 0 ? P.InvocationsPerSec / Base : 0.0,
                P.OutputsMatch ? "yes" : "NO");
  }
}

// A region with one specialization per distinct n; clients rotate through
// `NumKeys` values so a small budget forces steady-state eviction.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

void capacitySweep(uint64_t InvocationsPerThread) {
  constexpr unsigned NumThreads = 4;
  constexpr int64_t NumKeys = 16;
  std::printf("\ncapacity sweep: %u threads rotating over %lld keys, "
              "%llu invocations/thread\n",
              NumThreads, static_cast<long long>(NumKeys),
              static_cast<unsigned long long>(InvocationsPerThread));
  std::printf("  %-10s %12s %10s %10s %10s\n", "budget", "invocs/sec",
              "specruns", "evictions", "resident");

  for (size_t MaxEntries : {size_t(0), size_t(16), size_t(8), size_t(4)}) {
    core::DycContext Ctx;
    std::vector<std::string> Errors;
    if (!Ctx.compile(SumSrc, Errors))
      fatal("capacity-sweep source failed to compile");

    server::ServerConfig Cfg;
    Cfg.Budget.MaxEntries = MaxEntries;
    auto Server = Ctx.buildServer(OptFlags(), std::move(Cfg));
    int F = Server->findFunction("f");

    std::vector<std::unique_ptr<vm::VM>> Clients;
    for (unsigned T = 0; T != NumThreads; ++T)
      Clients.push_back(Server->makeClientVM());

    auto Start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> Pool;
      for (unsigned T = 0; T != NumThreads; ++T)
        Pool.emplace_back([&, T] {
          vm::VM &M = *Clients[T];
          for (uint64_t I = 0; I != InvocationsPerThread; ++I) {
            // Offset by thread id so clients are usually on different keys.
            int64_t N = 2 + (I + T * 3) % NumKeys;
            Word R = M.run(static_cast<uint32_t>(F), {Word::fromInt(N)});
            if (R.asInt() != N * (N - 1) / 2)
              fatal("capacity sweep produced a wrong sum");
          }
        });
      for (std::thread &Th : Pool)
        Th.join();
    }
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    Server->drain();

    server::ServerStatsSnapshot S = Server->stats();
    char Budget[32];
    if (MaxEntries)
      std::snprintf(Budget, sizeof(Budget), "%zu", MaxEntries);
    else
      std::snprintf(Budget, sizeof(Budget), "unbounded");
    std::printf("  %-10s %12.0f %10llu %10llu %10zu\n", Budget,
                Wall > 0 ? NumThreads * InvocationsPerThread / Wall : 0.0,
                static_cast<unsigned long long>(S.SpecRuns),
                static_cast<unsigned long long>(S.Evictions),
                Server->residentEntries(0));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = quickMode(Argc, Argv);
  threadSweep(Quick ? 50 : 2000);
  capacitySweep(Quick ? 200 : 20000);
  return 0;
}
