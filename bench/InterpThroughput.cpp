//===- bench/InterpThroughput.cpp --------------------------------------------------===//
//
// Host interpretation throughput of the two VM execution engines. For each
// workload, builds the dynamic configuration twice — once pinned to the
// legacy per-instruction switch loop, once to the predecoded superblock
// engine — runs the same region-invocation sequence through both, and
// reports simulated-instructions-per-host-second and host ns per simulated
// instruction. Parity of the simulated counters is the parity test's job
// (tests/InterpParityTest.cpp); this binary measures only host speed.
//
// Flags:
//   --quick        shrink the measured invocation counts (CI smoke)
//   --json FILE    write the measurements as JSON (BENCH_interp.json)
//   --check        exit nonzero if the predecoded engine is slower than
//                  the legacy engine on any measured workload
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineRun {
  uint64_t SimInstrs = 0; ///< simulated instructions in the timed segment
  double Seconds = 0;     ///< host wall-clock of the timed segment
  double InstrsPerSec() const { return Seconds > 0 ? SimInstrs / Seconds : 0; }
  double NsPerInstr() const {
    return SimInstrs ? Seconds * 1e9 / SimInstrs : 0;
  }
};

/// Builds \p W fresh, pins \p Engine, warms the dispatch caches with one
/// invocation (specialization happens there), then times \p Invokes more.
EngineRun runEngine(const Workload &W, vm::VM::EngineKind Engine,
                    uint64_t Invokes) {
  core::DycContext Ctx;
  core::compileWorkload(W, Ctx);
  auto E = Ctx.buildDynamic();
  E->Machine->Engine = Engine;
  WorkloadSetup S = W.Setup(*E->Machine);
  int FI = E->findFunction(W.RegionFunc);
  if (FI < 0)
    fatal(W.Name + ": region function not found");

  E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs); // warmup

  EngineRun R;
  uint64_t I0 = E->Machine->instrsExecuted();
  double T0 = nowSeconds();
  for (uint64_t I = 0; I != Invokes; ++I)
    E->Machine->run(static_cast<uint32_t>(FI), S.RegionArgs);
  R.Seconds = nowSeconds() - T0;
  R.SimInstrs = E->Machine->instrsExecuted() - I0;
  return R;
}

/// Scales the invocation count so the legacy engine's timed segment lasts
/// at least \p TargetSeconds — both engines then run the same count.
uint64_t calibrate(const Workload &W, double TargetSeconds) {
  const uint64_t Probe = 16;
  EngineRun R = runEngine(W, vm::VM::EngineKind::Legacy, Probe);
  if (R.Seconds <= 0)
    return Probe;
  double Scale = TargetSeconds / (R.Seconds / Probe);
  return std::clamp<uint64_t>(static_cast<uint64_t>(Scale), Probe, 50000);
}

struct Row {
  std::string Name;
  uint64_t Invocations = 0;
  EngineRun Legacy, Predecoded;
  double Speedup = 0;
};

void writeJson(const char *Path, const std::vector<Row> &Rows, bool Check,
               bool CheckPassed) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"interp_throughput\",\n");
  std::fprintf(F, "  \"dispatch\": \"%s\",\n", vm::VM::dispatchMode());
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\", \"invocations\": %llu,\n"
                 "     \"sim_instrs\": %llu,\n"
                 "     \"legacy\": {\"host_instrs_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f},\n"
                 "     \"predecoded\": {\"host_instrs_per_sec\": %.0f, "
                 "\"ns_per_instr\": %.3f},\n"
                 "     \"speedup\": %.3f}%s\n",
                 R.Name.c_str(), (unsigned long long)R.Invocations,
                 (unsigned long long)R.Predecoded.SimInstrs,
                 R.Legacy.InstrsPerSec(), R.Legacy.NsPerInstr(),
                 R.Predecoded.InstrsPerSec(), R.Predecoded.NsPerInstr(),
                 R.Speedup, I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"check\": %s,\n  \"check_passed\": %s\n}\n",
               Check ? "true" : "false", CheckPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = hasFlag(Argc, Argv, "--quick") ||
               [] {
                 const char *E = std::getenv("DYC_BENCH_QUICK");
                 return E && E[0] == '1';
               }();
  bool Check = hasFlag(Argc, Argv, "--check");
  const char *Json = jsonPath(Argc, Argv);

  // The acceptance pair (dotproduct, pnmconvol) plus one float-heavy
  // kernel and one application with deep call structure.
  const std::vector<std::string> Names = {"dotproduct", "pnmconvol",
                                          "chebyshev", "dinero"};
  double Target = Quick ? 0.05 : 0.4;

  std::printf("VM interpretation throughput (dispatch: %s)\n",
              vm::VM::dispatchMode());
  std::printf("%-12s %10s %14s %14s %9s %9s %8s\n", "workload", "invokes",
              "legacy i/s", "predec i/s", "ns/i(L)", "ns/i(P)", "speedup");

  std::vector<Row> Rows;
  bool CheckPassed = true;
  for (const std::string &Name : Names) {
    const Workload &W = workloads::workloadByName(Name);
    Row R;
    R.Name = Name;
    R.Invocations = calibrate(W, Target);
    R.Legacy = runEngine(W, vm::VM::EngineKind::Legacy, R.Invocations);
    R.Predecoded = runEngine(W, vm::VM::EngineKind::Predecoded, R.Invocations);
    R.Speedup = R.Legacy.Seconds > 0 && R.Predecoded.Seconds > 0
                    ? R.Predecoded.InstrsPerSec() / R.Legacy.InstrsPerSec()
                    : 0;
    if (R.Speedup < 1.0)
      CheckPassed = false;
    std::printf("%-12s %10llu %14.0f %14.0f %9.3f %9.3f %7.2fx\n",
                Name.c_str(), (unsigned long long)R.Invocations,
                R.Legacy.InstrsPerSec(), R.Predecoded.InstrsPerSec(),
                R.Legacy.NsPerInstr(), R.Predecoded.NsPerInstr(), R.Speedup);
    Rows.push_back(std::move(R));
  }

  if (Json)
    writeJson(Json, Rows, Check, CheckPassed);

  if (Check && !CheckPassed) {
    std::fprintf(stderr,
                 "FAIL: predecoded engine slower than legacy on at least "
                 "one workload\n");
    return 1;
  }
  return 0;
}
