//===- bench/DotproductDensity.cpp ------------------------------------------------===//
//
// Section 4.2 of the paper: "dotproduct's static input vector was 90%
// zeroes and therefore most of the calculations were eliminated; our
// experiments on more dense vectors produced speedups similar to those of
// the other kernels, and with no zeroes the dynamically compiled version
// experiences a slowdown due to poor instruction scheduling." This bench
// sweeps the zero density of the static vector.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("dotproduct zero-density sweep (section 4.2)\n\n");
  printf("%8s %12s %12s %10s\n", "%% zeroes", "static cyc", "dyn cyc",
         "speedup");
  printf("%s\n", std::string(48, '-').c_str());

  for (int PctZero : {90, 75, 50, 25, 0}) {
    workloads::Workload W = workloads::workloadByName("dotproduct");
    auto BaseSetup = W.Setup;
    W.Setup = [BaseSetup, PctZero](vm::VM &M) {
      workloads::WorkloadSetup S = BaseSetup(M);
      int64_t A = S.RegionArgs[0].asInt();
      int64_t N = S.RegionArgs[2].asInt();
      DeterministicRNG RNG(0xdd + PctZero);
      for (int64_t I = 0; I != N; ++I) {
        bool Zero = static_cast<int>(RNG.nextBelow(100)) < PctZero;
        // Non-zero values: odd constants (no 0/1/power-of-two shortcuts).
        int64_t V = Zero ? 0 : 3 + 2 * static_cast<int64_t>(RNG.nextBelow(40));
        M.memory()[A + I] = Word::fromInt(V);
      }
      return S;
    };
    core::RegionPerf P = core::measureRegion(W, OptFlags());
    printf("%7d%% %12.0f %12.0f %10.2f%s%s\n", PctZero,
           P.StaticCyclesPerInvoke, P.DynCyclesPerInvoke,
           P.AsymptoticSpeedup,
           P.AsymptoticSpeedup < 1.0 ? "   <- slowdown" : "",
           P.OutputsMatch ? "" : "  [MISMATCH]");
  }
  printf("\nPaper: 90%% zeroes -> 5.7x; dense vectors -> kernel-typical "
         "speedups; no zeroes -> slowdown\n(unscheduled dynamic code loses "
         "to the static compiler's schedule when nothing is eliminated).\n");
  return 0;
}
