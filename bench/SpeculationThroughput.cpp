//===- bench/SpeculationThroughput.cpp ---------------------------------------------===//
//
// Speculative promotion vs. hand annotation on the Table 3 kernels. For
// each kernel, runs the whole-program driver repeatedly under three
// configurations — static (no specialization), annotated (the paper's
// make_static), and speculative (annotations stripped; the run-time
// re-discovers the promotions from online value profiles) — and reports
// the simulated cycle totals (execution + dynamic compilation), the
// fraction of the annotated build's savings the speculative build
// recovered, and the promotion lifecycle counters. Outputs must stay
// bit-identical across all three.
//
// Flags:
//   --quick        fewer driver repetitions (CI smoke)
//   --json FILE    write the measurements as JSON (BENCH_spec.json)
//   --check        exit nonzero unless every kernel's outputs match the
//                  static build and at least 3 of the 5 kernels recover
//                  >= 80% of the annotated savings (the acceptance bar)
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "speculate/SpeculativeRuntime.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dyc;
using workloads::Workload;
using workloads::WorkloadSetup;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class Mode { Static, Annotated, Speculative };

/// One built-and-measured configuration of a kernel workload.
struct Run {
  core::DycContext Ctx;
  std::unique_ptr<core::Executable> E;
  WorkloadSetup S;
  uint64_t Cycles = 0; ///< exec + dynComp over all driver repetitions
  double Seconds = 0;  ///< host wall-clock of the measured repetitions
};

std::unique_ptr<Run> measure(const Workload &W, Mode M, int Reps) {
  auto R = std::make_unique<Run>();
  core::compileWorkload(W, R->Ctx);
  switch (M) {
  case Mode::Static:
    R->E = R->Ctx.buildStatic();
    break;
  case Mode::Annotated:
    R->E = R->Ctx.buildDynamic();
    break;
  case Mode::Speculative:
    R->E = R->Ctx.buildSpeculative();
    break;
  }
  R->S = W.Setup(*R->E->Machine);
  int MainIdx = R->E->findFunction(W.MainFunc);
  if (MainIdx < 0)
    fatal(W.Name + ": main function not found");
  double T0 = nowSeconds();
  for (int I = 0; I != Reps; ++I)
    R->E->Machine->run(static_cast<uint32_t>(MainIdx), R->S.MainArgs);
  R->Seconds = nowSeconds() - T0;
  R->Cycles = R->E->Machine->execCycles() + R->E->Machine->dynCompCycles();
  return R;
}

bool sameOutput(const Run &A, const Run &B) {
  if (A.S.OutLen != B.S.OutLen)
    return false;
  for (int64_t I = 0; I != A.S.OutLen; ++I)
    if (A.E->Machine->memory()[A.S.OutBase + I].Bits !=
        B.E->Machine->memory()[B.S.OutBase + I].Bits)
      return false;
  return true;
}

struct Row {
  std::string Name;
  uint64_t StaticCycles = 0, AnnotCycles = 0, SpecCycles = 0;
  double Recovered = 0; ///< speculative savings / annotated savings
  bool OutputsMatch = false;
  uint64_t Promotions = 0, Declined = 0, Demotions = 0;
  uint64_t GuardHits = 0, GuardFailures = 0;
  double SpecSeconds = 0;
};

void writeJson(const char *Path, const std::vector<Row> &Rows, int Reps,
               bool Check, bool CheckPassed) {
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"speculation_throughput\",\n");
  std::fprintf(F, "  \"reps\": %d,\n  \"workloads\": [\n", Reps);
  for (size_t I = 0; I != Rows.size(); ++I) {
    const Row &R = Rows[I];
    std::fprintf(F,
                 "    {\"name\": \"%s\",\n"
                 "     \"static_cycles\": %llu, \"annotated_cycles\": %llu, "
                 "\"speculative_cycles\": %llu,\n"
                 "     \"savings_recovered\": %.4f, \"outputs_match\": %s,\n"
                 "     \"promotions\": %llu, \"declined\": %llu, "
                 "\"demotions\": %llu,\n"
                 "     \"guard_hits\": %llu, \"guard_failures\": %llu,\n"
                 "     \"host_seconds\": %.4f}%s\n",
                 R.Name.c_str(), (unsigned long long)R.StaticCycles,
                 (unsigned long long)R.AnnotCycles,
                 (unsigned long long)R.SpecCycles, R.Recovered,
                 R.OutputsMatch ? "true" : "false",
                 (unsigned long long)R.Promotions,
                 (unsigned long long)R.Declined,
                 (unsigned long long)R.Demotions,
                 (unsigned long long)R.GuardHits,
                 (unsigned long long)R.GuardFailures, R.SpecSeconds,
                 I + 1 == Rows.size() ? "" : ",");
  }
  std::fprintf(F, "  ],\n  \"check\": %s,\n  \"check_passed\": %s\n}\n",
               Check ? "true" : "false", CheckPassed ? "true" : "false");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = hasFlag(Argc, Argv, "--quick") ||
               [] {
                 const char *E = std::getenv("DYC_BENCH_QUICK");
                 return E && E[0] == '1';
               }();
  bool Check = hasFlag(Argc, Argv, "--check");
  const char *Json = jsonPath(Argc, Argv);

  // Enough driver repetitions to amortize the one-time warm-up (HotCalls
  // generic executions plus the synthesis charge); --quick stays above
  // the promotion threshold with less steady state.
  const int Reps = Quick ? 20 : 48;
  const std::vector<std::string> Names = {"binary", "chebyshev",
                                          "dotproduct", "query", "romberg"};

  std::printf("Speculative promotion vs. hand annotation "
              "(simulated cycles, %d driver reps)\n",
              Reps);
  std::printf("%-12s %12s %12s %12s %10s %6s %6s %6s\n", "kernel", "static",
              "annotated", "speculative", "recovered", "promo", "hits",
              "fails");

  std::vector<Row> Rows;
  int Recovering = 0;
  bool OutputsOk = true;
  for (const std::string &Name : Names) {
    const Workload &W = workloads::workloadByName(Name);
    auto S = measure(W, Mode::Static, Reps);
    auto A = measure(W, Mode::Annotated, Reps);
    auto P = measure(W, Mode::Speculative, Reps);

    Row R;
    R.Name = Name;
    R.StaticCycles = S->Cycles;
    R.AnnotCycles = A->Cycles;
    R.SpecCycles = P->Cycles;
    R.SpecSeconds = P->Seconds;
    R.OutputsMatch = sameOutput(*S, *P) && sameOutput(*S, *A);
    double SavedA = S->Cycles > A->Cycles
                        ? static_cast<double>(S->Cycles - A->Cycles)
                        : 0.0;
    double SavedP = S->Cycles > P->Cycles
                        ? static_cast<double>(S->Cycles - P->Cycles)
                        : 0.0;
    R.Recovered = SavedA > 0 ? SavedP / SavedA : 0.0;
    const speculate::SpeculationStats &St = P->E->Spec->stats();
    R.Promotions = St.Promotions;
    R.Declined = St.PromotionsDeclined;
    R.Demotions = St.Demotions;
    R.GuardHits = St.GuardHits;
    R.GuardFailures = St.GuardFailures;

    if (R.Recovered >= 0.8)
      ++Recovering;
    if (!R.OutputsMatch)
      OutputsOk = false;
    std::printf("%-12s %12llu %12llu %12llu %9.1f%% %6llu %6llu %6llu%s\n",
                Name.c_str(), (unsigned long long)R.StaticCycles,
                (unsigned long long)R.AnnotCycles,
                (unsigned long long)R.SpecCycles, 100.0 * R.Recovered,
                (unsigned long long)R.Promotions,
                (unsigned long long)R.GuardHits,
                (unsigned long long)R.GuardFailures,
                R.OutputsMatch ? "" : "  [OUTPUT MISMATCH!]");
    Rows.push_back(std::move(R));
  }

  bool CheckPassed = OutputsOk && Recovering >= 3;
  std::printf("\n%d/%zu kernels recover >= 80%% of the annotated savings; "
              "outputs %s\n",
              Recovering, Names.size(),
              OutputsOk ? "bit-identical" : "MISMATCHED");

  if (Json)
    writeJson(Json, Rows, Reps, Check, CheckPassed);

  if (Check && !CheckPassed) {
    std::fprintf(stderr, "FAIL: speculation acceptance bar not met\n");
    return 1;
  }
  return 0;
}
