//===- bench/TierLatency.cpp -------------------------------------------------------===//
//
// Client-visible dispatch latency under tiered execution vs synchronous
// specialization. One client VM cycles round-robin through K distinct keys
// of a loop region; every invocation is timed with the host steady clock.
//
//  - MissPolicy::Block: the first call on each key stalls the client for
//    the full specialize+install, so the latency tail (p99/p999) is the
//    specializer cost.
//  - Tiered (async): misses run the generic fallback and promotion happens
//    on the worker pool, so the tail collapses to fallback-execution cost.
//    The price is a later time-to-steady-state (more rounds until every
//    key is served by its installed chain).
//
// Reported per mode: p50/p99/p999 invocation latency, time-to-steady-state
// (elapsed host time until a full round is served entirely from cache
// hits), and steady-state throughput from that point on. `--check` exits
// nonzero unless tiered p99 is strictly better than Block's with no
// steady-state throughput collapse. `--quick` (or DYC_BENCH_QUICK=1)
// shrinks the run for CI; `--json FILE` writes the BENCH_tier.json
// artifact.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"
#include "server/SpecServer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace dyc;

namespace {

bool hasFlag(int Argc, char **Argv, const char *Flag) {
  for (int I = 1; I < Argc; ++I)
    if (std::strcmp(Argv[I], Flag) == 0)
      return true;
  return false;
}

bool quickMode(int Argc, char **Argv) {
  if (hasFlag(Argc, Argv, "--quick"))
    return true;
  const char *Env = std::getenv("DYC_BENCH_QUICK");
  return Env && Env[0] == '1';
}

const char *jsonPath(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

// One specialization per distinct n; the unrolled body makes the
// specializer cost per miss clearly visible next to a generic execution.
const char *SumSrc = "int f(int n) {\n"
                     "  int i;\n"
                     "  make_static(n, i : cache_all);\n"
                     "  int s = 0;\n"
                     "  for (i = 0; i < n; i = i + 1) { s = s + i; }\n"
                     "  return s;\n"
                     "}";

struct ModeResult {
  const char *Mode = "";
  double P50Us = 0, P99Us = 0, P999Us = 0;
  double SteadySeconds = 0;       ///< elapsed until the first all-hit round
  double SteadyInvocsPerSec = 0;  ///< throughput from that round onward
  uint64_t Invocations = 0;
  bool ReachedSteady = false;
};

double percentile(std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Sorted.size()));
  if (Idx >= Sorted.size())
    Idx = Sorted.size() - 1;
  return Sorted[Idx];
}

ModeResult runMode(bool Tiered, int64_t NumKeys, int Rounds,
                   int ThroughputRounds, int64_t NBase, int64_t NStep) {
  core::DycContext Ctx;
  std::vector<std::string> Errors;
  if (!Ctx.compile(SumSrc, Errors))
    fatal("tier-latency source failed to compile");

  server::ServerConfig Cfg;
  Cfg.NumWorkers = 2;
  std::unique_ptr<server::SpecServer> Server;
  if (Tiered) {
    OptFlags Fl;
    // Warm=0: misses go straight to the predecoded generic fallback. The
    // interpreted cold tier would otherwise dominate the tail and this
    // bench isolates async promotion vs blocking specialization.
    Fl.Tier.WarmThreshold = 0;
    Fl.Tier.HotThreshold = 2;
    Server = Ctx.buildTiered(Fl, std::move(Cfg));
  } else {
    Cfg.OnMiss = server::MissPolicy::Block;
    Server = Ctx.buildServer(OptFlags(), std::move(Cfg));
  }
  std::unique_ptr<vm::VM> Client = Server->makeClientVM();
  int F = Server->findFunction("f");
  if (F < 0)
    fatal("tier-latency region not found");

  std::vector<double> LatUs;
  LatUs.reserve(static_cast<size_t>(NumKeys) * Rounds);

  ModeResult R;
  R.Mode = Tiered ? "tiered" : "block";
  uint64_t PrevHits = 0;
  double SteadyAt = -1;
  uint64_t InvocsBeforeSteady = 0;
  auto Start = std::chrono::steady_clock::now();
  for (int Round = 0; Round != Rounds; ++Round) {
    double RoundStart = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - Start)
                            .count();
    for (int64_t K = 0; K != NumKeys; ++K) {
      int64_t N = NBase + K * NStep;
      auto T0 = std::chrono::steady_clock::now();
      Word Ret = Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)});
      auto T1 = std::chrono::steady_clock::now();
      if (Ret.asInt() != N * (N - 1) / 2)
        fatal("tier-latency produced a wrong sum");
      LatUs.push_back(
          std::chrono::duration<double, std::micro>(T1 - T0).count());
      // Open-loop pacing: the gap is when background compiles run (on a
      // loaded host the worker pool otherwise timeshares with the client
      // and its quanta pollute the client's samples). Applied to both
      // modes; Block still pays the full specialize inside the sample.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    server::ServerStatsSnapshot S = Server->stats();
    uint64_t Hits = S.CacheHits;
    if (SteadyAt < 0 && Hits - PrevHits == static_cast<uint64_t>(NumKeys)) {
      // Every invocation this round was served by an installed chain:
      // steady state began at the round boundary.
      SteadyAt = RoundStart;
      InvocsBeforeSteady =
          static_cast<uint64_t>(Round) * static_cast<uint64_t>(NumKeys);
    }
    PrevHits = Hits;
  }
  double Total = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
  Server->drain();
  (void)InvocsBeforeSteady;

  R.Invocations = LatUs.size();
  R.ReachedSteady = SteadyAt >= 0;
  R.SteadySeconds = R.ReachedSteady ? SteadyAt : Total;

  // Separate throughput phase: everything is installed by now (drained),
  // so both modes run the identical hit path. A longer window here keeps
  // the number stable without diluting the miss fraction the latency
  // percentiles depend on.
  {
    auto T0 = std::chrono::steady_clock::now();
    for (int Round = 0; Round != ThroughputRounds; ++Round)
      for (int64_t K = 0; K != NumKeys; ++K) {
        int64_t N = NBase + K * NStep;
        Word Ret = Client->run(static_cast<uint32_t>(F), {Word::fromInt(N)});
        if (Ret.asInt() != N * (N - 1) / 2)
          fatal("tier-latency produced a wrong sum");
      }
    double Wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
    if (Wall > 0)
      R.SteadyInvocsPerSec =
          static_cast<double>(ThroughputRounds) *
          static_cast<double>(NumKeys) / Wall;
  }
  std::sort(LatUs.begin(), LatUs.end());
  R.P50Us = percentile(LatUs, 0.50);
  R.P99Us = percentile(LatUs, 0.99);
  R.P999Us = percentile(LatUs, 0.999);
  return R;
}

void printRow(const ModeResult &R) {
  std::printf("  %-8s %10.1f %10.1f %10.1f %12.4f %14.0f %8s\n", R.Mode,
              R.P50Us, R.P99Us, R.P999Us, R.SteadySeconds,
              R.SteadyInvocsPerSec, R.ReachedSteady ? "yes" : "NO");
}

void writeJson(const char *Path, bool Quick, const ModeResult &Block,
               const ModeResult &Tiered, bool P99Improved,
               bool SteadyThroughputOk) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F)
    fatal("cannot open --json output file");
  std::fprintf(F, "{\n  \"bench\": \"tier_latency\",\n");
  std::fprintf(F, "  \"quick\": %s,\n", Quick ? "true" : "false");
  std::fprintf(F, "  \"modes\": [\n");
  const ModeResult *Rows[] = {&Block, &Tiered};
  for (size_t I = 0; I != 2; ++I) {
    const ModeResult &R = *Rows[I];
    std::fprintf(F,
                 "    {\"mode\": \"%s\", \"p50_us\": %.2f, \"p99_us\": "
                 "%.2f, \"p999_us\": %.2f, \"steady_state_seconds\": %.6f, "
                 "\"steady_invocations_per_sec\": %.1f, \"invocations\": "
                 "%llu, \"reached_steady_state\": %s}%s\n",
                 R.Mode, R.P50Us, R.P99Us, R.P999Us, R.SteadySeconds,
                 R.SteadyInvocsPerSec,
                 static_cast<unsigned long long>(R.Invocations),
                 R.ReachedSteady ? "true" : "false", I == 0 ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"check\": {\"p99_improved\": %s, "
                  "\"steady_throughput_ok\": %s}\n}\n",
               P99Improved ? "true" : "false",
               SteadyThroughputOk ? "true" : "false");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = quickMode(Argc, Argv);
  const int64_t NumKeys = Quick ? 16 : 64;
  const int Rounds = Quick ? 20 : 50;
  const int ThroughputRounds = Quick ? 500 : 2000;
  // Trip counts large enough that a blocking specialize (IR walk + emit +
  // admission over the unrolled body) clearly dominates one generic
  // fallback execution of the same loop AND sits well above host
  // scheduler noise, so the p50/p99 gap between the modes is stable.
  const int64_t NBase = 512;
  const int64_t NStep = 8;

  std::printf("tier latency: 1 client, %lld keys round-robin, %d rounds\n",
              static_cast<long long>(NumKeys), Rounds);
  std::printf("  %-8s %10s %10s %10s %12s %14s %8s\n", "mode", "p50-us",
              "p99-us", "p999-us", "steady-sec", "steady-inv/s", "steady");

  ModeResult Block =
      runMode(false, NumKeys, Rounds, ThroughputRounds, NBase, NStep);
  printRow(Block);
  ModeResult Tiered =
      runMode(true, NumKeys, Rounds, ThroughputRounds, NBase, NStep);
  printRow(Tiered);

  bool P99Improved = Tiered.P99Us < Block.P99Us;
  bool SteadyThroughputOk =
      Tiered.ReachedSteady && Block.ReachedSteady &&
      Tiered.SteadyInvocsPerSec >= 0.85 * Block.SteadyInvocsPerSec;
  std::printf("\np99 %s (block %.1fus -> tiered %.1fus), steady-state "
              "throughput %s\n",
              P99Improved ? "improved" : "DID NOT IMPROVE", Block.P99Us,
              Tiered.P99Us, SteadyThroughputOk ? "held" : "REGRESSED");

  if (const char *Path = jsonPath(Argc, Argv))
    writeJson(Path, Quick, Block, Tiered, P99Improved, SteadyThroughputOk);

  if (hasFlag(Argc, Argv, "--check") && !(P99Improved && SteadyThroughputOk))
    return 1;
  return 0;
}
