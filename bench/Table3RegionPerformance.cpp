//===- bench/Table3RegionPerformance.cpp ---------------------------------------===//
//
// Regenerates Table 3 of the paper: "Dynamic Region Performance with All
// Optimizations" — asymptotic speedup, break-even point, dynamic-
// compilation overhead (cycles per generated instruction), and the number
// of instructions generated, for every workload.
//
//===----------------------------------------------------------------------===//

#include "core/Harness.h"

#include <cstdio>

using namespace dyc;

int main() {
  printf("Table 3: Dynamic Region Performance with All Optimizations\n");
  printf("(cf. Grant et al., PLDI 1999, Table 3 — shapes, not absolute "
         "numbers, are expected to match)\n\n");
  printf("%-22s %10s  %-34s %12s %12s\n", "Dynamic Region", "Asymptotic",
         "Break-Even Point", "DC Overhead", "Instructions");
  printf("%-22s %10s  %-34s %12s %12s\n", "", "Speedup", "",
         "(cyc/instr)", "Generated");
  printf("%s\n", std::string(96, '-').c_str());

  for (const workloads::Workload &W : workloads::allWorkloads()) {
    core::RegionPerf P = core::measureRegion(W, OptFlags());
    std::string BreakEven;
    if (P.BreakEvenInvocations < 0) {
      BreakEven = "never (no speedup)";
    } else if (P.BreakEvenInvocations <= 1.0) {
      BreakEven = formatString("1 invocation (%.0f %s)",
                               P.BreakEvenUnits < 1 ? 1 : P.BreakEvenUnits,
                               P.UnitName.c_str());
    } else {
      BreakEven = formatString("%.0f %s", P.BreakEvenUnits,
                               P.UnitName.c_str());
    }
    printf("%-22s %10.1f  %-34s %12.0f %12llu%s\n", W.Name.c_str(),
           P.AsymptoticSpeedup, BreakEven.c_str(), P.OverheadPerInstr,
           (unsigned long long)P.InstructionsGenerated,
           P.OutputsMatch ? "" : "  [OUTPUT MISMATCH!]");
  }

  printf("\nPaper's Table 3 for reference:\n");
  printf("  dinero 1.7 | m88ksim 3.7 | mipsi 5.0 | pnmconvol 3.1 | "
         "viewperf p&c 1.3 | shade 1.2\n");
  printf("  binary 1.8 | chebyshev 6.3 | dotproduct 5.7 | query 1.4 | "
         "romberg 1.3\n");
  return 0;
}
